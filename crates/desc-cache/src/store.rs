//! The two-tier cell-result store: a bounded in-memory hot tier in
//! front of an on-disk, content-addressed store of record, with a
//! single-flight registry so concurrent callers compute each cold
//! cell exactly once.
//!
//! - **Hot tier**: an LRU map under one mutex, bounded by a byte
//!   budget (`DESC_CACHE_MEM_BYTES`, default 256 MiB). Every disk hit
//!   and every store populates it, so overlapping figures in one
//!   process (fig16/fig22/fig25 sweep the same grid) pay the disk
//!   once per cell; a long-lived server evicts least-recently-used
//!   entries instead of growing without bound. Evictions never touch
//!   the store of record — an evicted cell re-reads from disk.
//! - **Store of record**: one file per cell at
//!   `<dir>/objects/<first 2 hex>/<32 hex>.cell`, written atomically
//!   (temp + rename) in the versioned, checksummed entry format of
//!   [`crate::codec`]. Lookups *probe* the filesystem — the manifest
//!   is never consulted for reads — so the store self-heals: deleting
//!   any object just makes that cell recompute.
//! - **Manifest**: an advisory append-only completion log (see
//!   [`crate::manifest`]) driving `--resume` reporting.
//! - **Single flight**: [`CacheStore::begin_flight`] registers a cold
//!   cell as in flight; the first caller leads and computes while
//!   later callers wait on the leader's slot and receive the
//!   identical published [`Arc<Entry>`] ([`FlightOutcome::Shared`]).
//!   A leader that unwinds (panic or cancellation) hands leadership
//!   to a waiting follower instead of wedging the key.
//!
//! Every outcome is counted ([`CacheStats`]) and mirrored into
//! `cache.*` registry counters while telemetry is enabled, which is
//! how the hit/miss counters reach the `cache` stanza of
//! `desc-run-report/v1` and `bench_pipeline`'s cache axis. `cache.*`
//! names are excluded from metric capture and from determinism
//! comparisons, like `pool.*`.
//!
//! A lookup never returns a wrong or stale result class: entries are
//! validated (checksum, version, key echo) at decode time, and a
//! version-mismatched or corrupt entry is counted and treated as a
//! miss — the cell recomputes and the entry is overwritten. A flight
//! slot only ever resolves to a fully published entry (or to nothing,
//! on handoff): followers can never observe a partial result.

use crate::codec::{decode_entry, encode_entry, CodecError, Entry};
use crate::hash::CellKey;
use crate::manifest::{write_atomic, Manifest};
use desc_telemetry::Snapshot;
use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Hot-tier byte budget when `DESC_CACHE_MEM_BYTES` is unset:
/// generous (cells are a few KiB, so this holds the entire paper grid
/// many times over) but bounded, so a long-lived server cannot grow
/// past it.
pub const DEFAULT_MEM_BYTES: u64 = 256 * 1024 * 1024;

/// How long a single-flight follower sleeps between checks of the
/// leader's slot (and calls to its cancellation poll). Bounded so a
/// follower with a deadline never oversleeps it by much.
const FLIGHT_WAIT_TICK: Duration = Duration::from_millis(10);

/// Point-in-time store counters (also mirrored as `cache.*` registry
/// counters while telemetry is enabled).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the in-memory hot map.
    pub hits_memory: u64,
    /// Lookups served from the on-disk store of record.
    pub hits_disk: u64,
    /// Lookups that found no usable entry.
    pub misses: u64,
    /// Entries written.
    pub stores: u64,
    /// Structurally sound entries skipped for carrying a different
    /// cell-schema version.
    pub version_mismatches: u64,
    /// Corrupt/unreadable entries and failed writes (all non-fatal).
    pub errors: u64,
    /// Hot-tier entries evicted to stay under the byte budget.
    pub evictions: u64,
    /// Flights led: cold cells this store handed to a caller to
    /// compute (exactly one per concurrently demanded cold cell).
    pub inflight_leads: u64,
    /// Callers that found their cell already in flight and waited on
    /// the leader's slot instead of computing.
    pub inflight_waits: u64,
    /// Waits that ended with the leader's published entry (the dedup
    /// win: each is a cell compute that did not happen).
    pub inflight_hits: u64,
    /// Leadership handoffs: a leader unwound without publishing and a
    /// waiting follower took over (or re-queued behind a new leader).
    pub inflight_handoffs: u64,
}

impl CacheStats {
    /// Total hits across both tiers.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits_memory + self.hits_disk
    }
}

#[derive(Debug, Default)]
struct StatCells {
    hits_memory: AtomicU64,
    hits_disk: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    version_mismatches: AtomicU64,
    errors: AtomicU64,
    evictions: AtomicU64,
    inflight_leads: AtomicU64,
    inflight_waits: AtomicU64,
    inflight_hits: AtomicU64,
    inflight_handoffs: AtomicU64,
}

/// The bounded LRU hot tier. Recency is a monotonic clock stamp per
/// slot plus a `stamp -> key` index, so touch/evict are `O(log n)`
/// without unsafe pointer links (this crate forbids unsafe code).
#[derive(Debug)]
struct HotTier {
    map: HashMap<CellKey, HotSlot>,
    order: BTreeMap<u64, CellKey>,
    clock: u64,
    bytes: u64,
    budget: u64,
}

#[derive(Debug)]
struct HotSlot {
    entry: Arc<Entry>,
    stamp: u64,
    cost: u64,
}

impl HotTier {
    fn new(budget: u64) -> Self {
        Self { map: HashMap::new(), order: BTreeMap::new(), clock: 0, bytes: 0, budget }
    }

    /// Fetches and marks `key` most recently used.
    fn get(&mut self, key: &CellKey) -> Option<Arc<Entry>> {
        let stamp = self.next_stamp();
        let slot = self.map.get_mut(key)?;
        self.order.remove(&slot.stamp);
        slot.stamp = stamp;
        self.order.insert(stamp, *key);
        Some(Arc::clone(&slot.entry))
    }

    /// Inserts (or replaces) `key`, then evicts least-recently-used
    /// entries until back under budget. The entry just inserted is
    /// never evicted — a cell must be reachable at least until the
    /// next insert, whatever the budget. Returns the eviction count.
    fn insert(&mut self, key: CellKey, entry: Arc<Entry>) -> u64 {
        self.remove(&key);
        let stamp = self.next_stamp();
        let cost = entry.approx_bytes();
        self.bytes += cost;
        self.map.insert(key, HotSlot { entry, stamp, cost });
        self.order.insert(stamp, key);
        let mut evicted = 0;
        while self.bytes > self.budget {
            let (&oldest, &victim) = self.order.iter().next().expect("order tracks map");
            if victim == key {
                break;
            }
            self.order.remove(&oldest);
            let slot = self.map.remove(&victim).expect("map tracks order");
            self.bytes -= slot.cost;
            evicted += 1;
        }
        evicted
    }

    fn remove(&mut self, key: &CellKey) {
        if let Some(slot) = self.map.remove(key) {
            self.order.remove(&slot.stamp);
            self.bytes -= slot.cost;
        }
    }

    fn next_stamp(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }
}

/// One in-flight cold cell: the leader publishes (or abandons) into
/// `state` and wakes waiting followers.
#[derive(Debug, Default)]
struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct FlightState {
    done: bool,
    /// `Some` after a publish, `None` after the leader abandoned the
    /// flight (unwound without publishing).
    entry: Option<Arc<Entry>>,
}

impl Flight {
    fn resolve(&self, entry: Option<Arc<Entry>>) {
        // `into_inner` over poisoning: resolution happens on drop
        // paths during unwinds, and a waiter must still be woken.
        let mut state = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        state.done = true;
        state.entry = entry;
        self.cv.notify_all();
    }

    /// One bounded wait tick. `Some(resolution)` once the flight is
    /// resolved; `None` means "still computing, poll and re-wait".
    fn poll_done(&self, tick: Duration) -> Option<Option<Arc<Entry>>> {
        let state = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if state.done {
            return Some(state.entry.clone());
        }
        let (state, _) = self
            .cv
            .wait_timeout(state, tick)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        state.done.then(|| state.entry.clone())
    }
}

/// What [`CacheStore::begin_flight`] resolved a cell demand into.
#[derive(Debug)]
pub enum FlightOutcome<'a> {
    /// The store already had a usable entry (hot or disk hit).
    Ready(Arc<Entry>),
    /// Another caller was computing this cell; this is the identical
    /// entry it published. Each `Shared` is one deduplicated compute.
    Shared(Arc<Entry>),
    /// This caller leads: compute the cell and
    /// [`publish`](FlightLease::publish) it through the lease.
    Lead(FlightLease<'a>),
}

/// Leadership of one in-flight cell. [`publish`](Self::publish) stores
/// the result and releases waiting followers with it; dropping the
/// lease without publishing (panic, cancellation, early return) wakes
/// followers empty-handed so one of them takes over — a crashed leader
/// can never wedge a key.
#[derive(Debug)]
pub struct FlightLease<'a> {
    store: &'a CacheStore,
    key: CellKey,
    /// `None` when single-flight is disabled: the lease then degrades
    /// to a plain [`CacheStore::store`] on publish.
    flight: Option<Arc<Flight>>,
    published: bool,
}

impl FlightLease<'_> {
    /// The cell this lease leads.
    #[must_use]
    pub fn key(&self) -> &CellKey {
        &self.key
    }

    /// Publishes the computed cell: stores it (hot tier and store of
    /// record first, so fresh lookups hit before the flight is
    /// retired), then hands the identical entry to every waiting
    /// follower.
    pub fn publish(mut self, payload: Vec<u8>, delta: Option<Snapshot>) -> Arc<Entry> {
        let entry = self.store.store_entry(&self.key, payload, delta);
        self.published = true;
        if let Some(flight) = self.flight.take() {
            self.store.retire_flight(&self.key, &flight);
            flight.resolve(Some(Arc::clone(&entry)));
        }
        entry
    }
}

impl Drop for FlightLease<'_> {
    fn drop(&mut self) {
        if self.published {
            return;
        }
        if let Some(flight) = self.flight.take() {
            // Retire before resolving: by the time a follower wakes to
            // retry, the dead flight is gone and the first retrier
            // re-leads under a fresh slot.
            self.store.retire_flight(&self.key, &flight);
            flight.resolve(None);
        }
    }
}

/// The two-tier content-addressed cell store. Cheap to share
/// (`Arc<CacheStore>`); all methods take `&self`.
#[derive(Debug)]
pub struct CacheStore {
    dir: Option<PathBuf>,
    version: u32,
    hot: Mutex<HotTier>,
    inflight: Mutex<HashMap<CellKey, Arc<Flight>>>,
    single_flight: AtomicBool,
    manifest: Option<Mutex<Manifest>>,
    stats: StatCells,
}

/// Hot-tier byte budget: `DESC_CACHE_MEM_BYTES` when set to a
/// positive integer, [`DEFAULT_MEM_BYTES`] otherwise.
fn mem_budget_from_env() -> u64 {
    std::env::var("DESC_CACHE_MEM_BYTES")
        .ok()
        .and_then(|raw| raw.trim().parse::<u64>().ok())
        .filter(|&bytes| bytes > 0)
        .unwrap_or(DEFAULT_MEM_BYTES)
}

impl CacheStore {
    /// A memory-only store (hot tier without a store of record) —
    /// used by in-process warm/cold tests and available to embedders
    /// that only want intra-process dedup.
    #[must_use]
    pub fn in_memory(version: u32) -> Self {
        Self {
            dir: None,
            version,
            hot: Mutex::new(HotTier::new(mem_budget_from_env())),
            inflight: Mutex::new(HashMap::new()),
            single_flight: AtomicBool::new(true),
            manifest: None,
            stats: StatCells::default(),
        }
    }

    /// Replaces the hot tier's byte budget (tests and benches; the
    /// production budget comes from `DESC_CACHE_MEM_BYTES`).
    #[must_use]
    pub fn with_mem_budget(self, bytes: u64) -> Self {
        self.hot.lock().expect("hot tier poisoned").budget = bytes;
        self
    }

    /// Enables/disables single-flight dedup (enabled by default).
    /// With it off, [`Self::begin_flight`] still works but every
    /// cold caller leads — the `bench_pipeline` contention baseline.
    pub fn set_single_flight(&self, enabled: bool) {
        self.single_flight.store(enabled, Ordering::Relaxed);
    }

    /// Opens (creating as needed) the on-disk store at `dir`.
    ///
    /// # Errors
    ///
    /// Fails when the directory cannot be created, written (probed
    /// with an atomic write), or its manifest cannot be read — the
    /// conditions `repro` maps to its cache exit code. A *damaged*
    /// manifest is not an error (tolerant loader).
    pub fn open(dir: impl Into<PathBuf>, version: u32) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(dir.join("objects"))?;
        // Probe writability up front so a read-only directory fails
        // loudly at startup instead of degrading every store.
        let probe = dir.join(".probe");
        write_atomic(&probe, b"desc-cache")?;
        std::fs::remove_file(&probe)?;
        let manifest = Manifest::load(dir.join("manifest"))?;
        Ok(Self {
            dir: Some(dir),
            version,
            hot: Mutex::new(HotTier::new(mem_budget_from_env())),
            inflight: Mutex::new(HashMap::new()),
            single_flight: AtomicBool::new(true),
            manifest: Some(Mutex::new(manifest)),
            stats: StatCells::default(),
        })
    }

    /// The backing directory, when this store has one.
    #[must_use]
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// The cell-schema version this store serves.
    #[must_use]
    pub fn version(&self) -> u32 {
        self.version
    }

    fn object_path(&self, dir: &Path, key: &CellKey) -> PathBuf {
        let hex = key.hex();
        dir.join("objects").join(&hex[..2]).join(format!("{hex}.cell"))
    }

    /// Looks up `key`: hot map first, then a disk probe. With
    /// `require_delta`, an entry without a captured metric delta is
    /// treated as a miss (a telemetry-enabled run must be able to
    /// replay the cell's metrics; recomputing overwrites the entry
    /// with one that has them).
    pub fn lookup(&self, key: &CellKey, require_delta: bool) -> Option<Arc<Entry>> {
        let usable = |e: &Entry| !require_delta || e.delta.is_some();
        if let Some(entry) = self.hot.lock().expect("hot tier poisoned").get(key) {
            if usable(&entry) {
                self.bump(&self.stats.hits_memory, "cache.hits_memory");
                return Some(entry);
            }
            self.bump(&self.stats.misses, "cache.misses");
            return None;
        }
        let Some(dir) = &self.dir else {
            self.bump(&self.stats.misses, "cache.misses");
            return None;
        };
        let path = self.object_path(dir, key);
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) => {
                if e.kind() != std::io::ErrorKind::NotFound {
                    self.bump(&self.stats.errors, "cache.errors");
                }
                self.bump(&self.stats.misses, "cache.misses");
                return None;
            }
        };
        match decode_entry(&bytes, self.version, key) {
            Ok(entry) if usable(&entry) => {
                let entry = Arc::new(entry);
                let evicted =
                    self.hot.lock().expect("hot tier poisoned").insert(*key, Arc::clone(&entry));
                self.bump_by(&self.stats.evictions, "cache.evictions", evicted);
                self.bump(&self.stats.hits_disk, "cache.hits_disk");
                Some(entry)
            }
            Ok(_) => {
                self.bump(&self.stats.misses, "cache.misses");
                None
            }
            Err(CodecError::Version { .. }) => {
                self.bump(&self.stats.version_mismatches, "cache.version_mismatches");
                self.bump(&self.stats.misses, "cache.misses");
                None
            }
            Err(_) => {
                self.bump(&self.stats.errors, "cache.errors");
                self.bump(&self.stats.misses, "cache.misses");
                None
            }
        }
    }

    /// Reports that an entry returned by [`CacheStore::lookup`] had an
    /// undecodable payload (caller-level codec disagreement). Evicts
    /// it from the hot tier *and* deletes the on-disk object, so the
    /// next lookup is a genuine miss and the recompute's
    /// [`CacheStore::store`] is what future lookups see — without the
    /// deletion, a disk-backed store would keep re-serving the same
    /// entry-level-valid but app-undecodable object forever.
    pub fn note_corrupt(&self, key: &CellKey) {
        self.hot.lock().expect("hot tier poisoned").remove(key);
        if let Some(dir) = &self.dir {
            let removed = std::fs::remove_file(self.object_path(dir, key));
            if let Err(e) = removed {
                if e.kind() != std::io::ErrorKind::NotFound {
                    self.bump(&self.stats.errors, "cache.errors");
                }
            }
        }
        self.bump(&self.stats.errors, "cache.errors");
    }

    /// Stores a computed cell under `key` (hot map immediately; object
    /// file atomically; manifest recorded last, so a manifest entry
    /// implies its object was published). Write failures are counted,
    /// never raised — a broken disk degrades the cache to memory-only
    /// behavior rather than failing the run.
    pub fn store(&self, key: &CellKey, payload: Vec<u8>, delta: Option<Snapshot>) {
        let _ = self.store_entry(key, payload, delta);
    }

    fn store_entry(&self, key: &CellKey, payload: Vec<u8>, delta: Option<Snapshot>) -> Arc<Entry> {
        let entry = Arc::new(Entry { payload, delta });
        let evicted = self.hot.lock().expect("hot tier poisoned").insert(*key, Arc::clone(&entry));
        self.bump_by(&self.stats.evictions, "cache.evictions", evicted);
        self.bump(&self.stats.stores, "cache.stores");
        let Some(dir) = &self.dir else { return entry };
        let bytes = encode_entry(self.version, key, &entry.payload, entry.delta.as_ref());
        let path = self.object_path(dir, key);
        let written = path
            .parent()
            .map(std::fs::create_dir_all)
            .unwrap_or(Ok(()))
            .and_then(|()| write_atomic(&path, &bytes));
        if written.is_err() {
            self.bump(&self.stats.errors, "cache.errors");
            return entry;
        }
        if let Some(manifest) = &self.manifest {
            let recorded = manifest
                .lock()
                .expect("manifest poisoned")
                .record(*key, self.version);
            if recorded.is_err() {
                self.bump(&self.stats.errors, "cache.errors");
            }
        }
        entry
    }

    /// Resolves a demand for `key` into a hit, a shared in-flight
    /// result, or leadership of the compute — the single-flight entry
    /// point (see the module docs).
    ///
    /// `poll` runs between bounded wait ticks while this caller waits
    /// on another's flight, with no store locks held; it may unwind
    /// (e.g. a cancellation check) to abandon the wait. Leaders'
    /// `poll` is never called.
    ///
    /// With `require_delta`, a published entry without a metric delta
    /// does not satisfy a waiting follower — it loops and recomputes,
    /// exactly as [`Self::lookup`] treats such entries as misses.
    pub fn begin_flight(
        &self,
        key: &CellKey,
        require_delta: bool,
        poll: &mut dyn FnMut(),
    ) -> FlightOutcome<'_> {
        loop {
            if let Some(entry) = self.lookup(key, require_delta) {
                return FlightOutcome::Ready(entry);
            }
            if !self.single_flight.load(Ordering::Relaxed) {
                // Dedup off: every cold caller leads, nobody waits.
                return FlightOutcome::Lead(FlightLease {
                    store: self,
                    key: *key,
                    flight: None,
                    published: false,
                });
            }
            let flight = {
                let mut inflight = self.inflight.lock().expect("inflight registry poisoned");
                match inflight.get(key) {
                    Some(flight) => Arc::clone(flight),
                    None => {
                        let flight = Arc::new(Flight::default());
                        inflight.insert(*key, Arc::clone(&flight));
                        self.bump(&self.stats.inflight_leads, "cache.inflight_leads");
                        return FlightOutcome::Lead(FlightLease {
                            store: self,
                            key: *key,
                            flight: Some(flight),
                            published: false,
                        });
                    }
                }
            };
            self.bump(&self.stats.inflight_waits, "cache.inflight_waits");
            loop {
                match flight.poll_done(FLIGHT_WAIT_TICK) {
                    Some(Some(entry)) => {
                        if !require_delta || entry.delta.is_some() {
                            self.bump(&self.stats.inflight_hits, "cache.inflight_hits");
                            return FlightOutcome::Shared(entry);
                        }
                        // The leader published without the delta this
                        // caller needs; recompute (outer loop leads).
                        break;
                    }
                    Some(None) => {
                        // Leader abandoned the flight: retry from the
                        // top — the first retrier re-leads, the rest
                        // queue behind it.
                        self.bump(&self.stats.inflight_handoffs, "cache.inflight_handoffs");
                        break;
                    }
                    None => poll(),
                }
            }
        }
    }

    /// Removes `flight` from the registry iff it is still the one
    /// registered under `key` (a successor may already have re-led).
    fn retire_flight(&self, key: &CellKey, flight: &Arc<Flight>) {
        let mut inflight = self
            .inflight
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if inflight.get(key).is_some_and(|current| Arc::ptr_eq(current, flight)) {
            inflight.remove(key);
        }
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits_memory: self.stats.hits_memory.load(Ordering::Relaxed),
            hits_disk: self.stats.hits_disk.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            stores: self.stats.stores.load(Ordering::Relaxed),
            version_mismatches: self.stats.version_mismatches.load(Ordering::Relaxed),
            errors: self.stats.errors.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            inflight_leads: self.stats.inflight_leads.load(Ordering::Relaxed),
            inflight_waits: self.stats.inflight_waits.load(Ordering::Relaxed),
            inflight_hits: self.stats.inflight_hits.load(Ordering::Relaxed),
            inflight_handoffs: self.stats.inflight_handoffs.load(Ordering::Relaxed),
        }
    }

    /// `(key, version)` entries in the manifest (0 for memory-only
    /// stores).
    #[must_use]
    pub fn manifest_cells(&self) -> u64 {
        self.manifest
            .as_ref()
            .map(|m| m.lock().expect("manifest poisoned").len() as u64)
            .unwrap_or(0)
    }

    /// Malformed manifest lines dropped at load (0 for memory-only).
    #[must_use]
    pub fn manifest_skipped(&self) -> u64 {
        self.manifest
            .as_ref()
            .map(|m| m.lock().expect("manifest poisoned").skipped())
            .unwrap_or(0)
    }

    fn bump(&self, cell: &AtomicU64, metric: &str) {
        self.bump_by(cell, metric, 1);
    }

    fn bump_by(&self, cell: &AtomicU64, metric: &str, n: u64) {
        if n == 0 {
            return;
        }
        cell.fetch_add(n, Ordering::Relaxed);
        // Cell-granular (not per-access), so the registry lookup is
        // fine without a cached handle.
        if desc_telemetry::enabled() {
            desc_telemetry::global().counter(metric).add(n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> CellKey {
        CellKey { hi: n.wrapping_mul(0x9e37_79b9_7f4a_7c15), lo: n }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("desc-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_store_round_trip_and_stats() {
        let store = CacheStore::in_memory(1);
        assert!(store.lookup(&key(1), false).is_none());
        store.store(&key(1), vec![1, 2, 3], None);
        let hit = store.lookup(&key(1), false).expect("hot hit");
        assert_eq!(hit.payload, vec![1, 2, 3]);
        // An entry without a delta is unusable when one is required.
        assert!(store.lookup(&key(1), true).is_none());
        let stats = store.stats();
        assert_eq!(
            (stats.hits_memory, stats.misses, stats.stores),
            (1, 2, 1),
            "{stats:?}"
        );
    }

    #[test]
    fn disk_store_survives_reopen_like_a_new_process() {
        let dir = tmp_dir("reopen");
        {
            let store = CacheStore::open(&dir, 1).unwrap();
            store.store(&key(7), b"result".to_vec(), None);
            assert_eq!(store.manifest_cells(), 1);
        }
        let store = CacheStore::open(&dir, 1).unwrap();
        let hit = store.lookup(&key(7), false).expect("disk hit");
        assert_eq!(hit.payload, b"result");
        assert_eq!(store.stats().hits_disk, 1);
        // Second lookup is served hot.
        store.lookup(&key(7), false).unwrap();
        assert_eq!(store.stats().hits_memory, 1);
        assert_eq!(store.manifest_cells(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_bump_invalidates_without_error() {
        let dir = tmp_dir("version");
        CacheStore::open(&dir, 1).unwrap().store(&key(3), vec![9], None);
        let newer = CacheStore::open(&dir, 2).unwrap();
        assert!(newer.lookup(&key(3), false).is_none());
        let stats = newer.stats();
        assert_eq!((stats.version_mismatches, stats.errors, stats.misses), (1, 0, 1));
        // Recompute overwrites under the new version.
        newer.store(&key(3), vec![10], None);
        assert_eq!(
            CacheStore::open(&dir, 2).unwrap().lookup(&key(3), false).unwrap().payload,
            vec![10]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_object_is_a_counted_miss() {
        let dir = tmp_dir("corrupt");
        let store = CacheStore::open(&dir, 1).unwrap();
        store.store(&key(5), vec![1, 2, 3], None);
        let path = store.object_path(store.dir().unwrap(), &key(5));
        // Truncate the object (a state atomic writes cannot produce;
        // simulates external damage).
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let fresh = CacheStore::open(&dir, 1).unwrap();
        assert!(fresh.lookup(&key(5), false).is_none());
        let stats = fresh.stats();
        assert_eq!((stats.errors, stats.misses), (1, 1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn note_corrupt_deletes_the_disk_object_so_lookup_misses() {
        let dir = tmp_dir("notecorrupt");
        let store = CacheStore::open(&dir, 1).unwrap();
        store.store(&key(6), vec![1, 2, 3], None);
        // The entry is entry-level valid; pretend the *application*
        // codec rejected its payload.
        store.note_corrupt(&key(6));
        // Hot tier and disk object are both gone: the next demand is
        // a miss even through a fresh store on the same directory, so
        // a caller can never be fed the same undecodable object again.
        assert!(store.lookup(&key(6), false).is_none());
        assert!(CacheStore::open(&dir, 1).unwrap().lookup(&key(6), false).is_none());
        assert!(store.stats().errors >= 1);
        // Re-reporting an already-deleted object stays non-fatal.
        store.note_corrupt(&key(6));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delta_round_trips_through_disk() {
        let dir = tmp_dir("delta");
        let delta = Snapshot {
            metrics: vec![(
                "sim.test.counter".to_owned(),
                desc_telemetry::MetricValue::Counter(42),
            )],
        };
        CacheStore::open(&dir, 1).unwrap().store(&key(8), vec![0], Some(delta.clone()));
        let store = CacheStore::open(&dir, 1).unwrap();
        let hit = store.lookup(&key(8), true).expect("delta-bearing hit");
        assert_eq!(hit.delta.as_ref().unwrap().metrics, delta.metrics);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Convenience for tests that never wait: lead or die.
    fn must_lead<'a>(store: &'a CacheStore, k: &CellKey) -> FlightLease<'a> {
        match store.begin_flight(k, false, &mut || {}) {
            FlightOutcome::Lead(lease) => lease,
            other => panic!("expected leadership, got {other:?}"),
        }
    }

    #[test]
    fn flight_leader_publishes_and_follower_shares_the_same_arc() {
        let store = Arc::new(CacheStore::in_memory(1));
        let lease = must_lead(&store, &key(11));
        let follower = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                match store.begin_flight(&key(11), false, &mut || {}) {
                    FlightOutcome::Shared(e) | FlightOutcome::Ready(e) => e,
                    FlightOutcome::Lead(_) => panic!("key already led"),
                }
            })
        };
        // Give the follower time to join the flight (no harm if it
        // instead lands on a hot-map hit after the publish).
        std::thread::sleep(Duration::from_millis(30));
        let published = lease.publish(vec![4, 5, 6], None);
        let shared = follower.join().unwrap();
        assert!(Arc::ptr_eq(&published, &shared) || shared.payload == published.payload);
        let stats = store.stats();
        assert_eq!(stats.inflight_leads, 1, "{stats:?}");
        assert_eq!(stats.stores, 1, "{stats:?}");
    }

    #[test]
    fn abandoned_flight_hands_leadership_to_a_follower() {
        let store = Arc::new(CacheStore::in_memory(1));
        let lease = must_lead(&store, &key(12));
        let follower = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || match store.begin_flight(&key(12), false, &mut || {}) {
                FlightOutcome::Lead(lease) => {
                    lease.publish(vec![9], None);
                }
                other => panic!("follower should inherit leadership, got {other:?}"),
            })
        };
        // Wait until the follower is registered as a waiter, then
        // abandon leadership by dropping the lease unpublished.
        while store.stats().inflight_waits == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(lease);
        follower.join().unwrap();
        let stats = store.stats();
        assert_eq!(stats.inflight_handoffs, 1, "{stats:?}");
        assert_eq!(stats.inflight_leads, 2, "{stats:?}");
        assert_eq!(store.lookup(&key(12), false).unwrap().payload, vec![9]);
    }

    #[test]
    fn follower_poll_can_unwind_and_registry_stays_clean() {
        let store = Arc::new(CacheStore::in_memory(1));
        let lease = must_lead(&store, &key(13));
        let follower = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    store.begin_flight(&key(13), false, &mut || panic!("cancelled"))
                }));
            })
        };
        while store.stats().inflight_waits == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        follower.join().unwrap();
        // The leader is unaffected by the follower's unwind and can
        // still publish; the registry slot retires with it.
        lease.publish(vec![7], None);
        assert!(store.inflight.lock().unwrap().is_empty());
        assert_eq!(store.lookup(&key(13), false).unwrap().payload, vec![7]);
    }

    #[test]
    fn single_flight_off_means_every_cold_caller_leads() {
        let store = CacheStore::in_memory(1);
        store.set_single_flight(false);
        let a = must_lead(&store, &key(14));
        let b = must_lead(&store, &key(14));
        a.publish(vec![1], None);
        b.publish(vec![1], None);
        let stats = store.stats();
        assert_eq!((stats.inflight_leads, stats.stores), (0, 2), "{stats:?}");
    }

    #[test]
    fn hot_tier_evicts_lru_under_byte_budget_but_disk_survives() {
        let dir = tmp_dir("lru");
        // Budget fits roughly one entry (payload + fixed overhead).
        let store = CacheStore::open(&dir, 1).unwrap().with_mem_budget(200);
        store.store(&key(1), vec![0u8; 64], None);
        store.store(&key(2), vec![0u8; 64], None);
        let stats = store.stats();
        assert!(stats.evictions >= 1, "{stats:?}");
        // key(1) was evicted from the hot tier but re-reads from disk.
        assert_eq!(store.lookup(&key(1), false).unwrap().payload.len(), 64);
        assert!(store.stats().hits_disk >= 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn newest_entry_is_never_evicted_even_over_budget() {
        let store = CacheStore::in_memory(1).with_mem_budget(1);
        store.store(&key(21), vec![0u8; 4096], None);
        assert!(store.lookup(&key(21), false).is_some(), "newest stays reachable");
        store.store(&key(22), vec![0u8; 4096], None);
        assert!(store.lookup(&key(22), false).is_some());
        // The older one is gone (memory-only store: a true miss).
        assert!(store.lookup(&key(21), false).is_none());
        assert_eq!(store.stats().evictions, 1);
    }

    #[test]
    fn lru_touch_protects_recently_used_entries() {
        // Each delta-less entry costs 40 (payload) + 96 (overhead)
        // bytes; a 420-byte budget holds three but not four.
        let store = CacheStore::in_memory(1).with_mem_budget(420);
        store.store(&key(31), vec![0u8; 40], None);
        store.store(&key(32), vec![0u8; 40], None);
        store.store(&key(33), vec![0u8; 40], None);
        // Touch 31 so 32 becomes the LRU victim.
        store.lookup(&key(31), false).unwrap();
        store.store(&key(34), vec![0u8; 40], None);
        assert!(store.lookup(&key(31), false).is_some(), "touched entry survives");
        assert!(store.lookup(&key(32), false).is_none(), "LRU entry evicted");
    }

    #[test]
    fn open_rejects_a_file_as_cache_dir() {
        let dir = tmp_dir("notadir");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("plain-file");
        std::fs::write(&file, b"x").unwrap();
        assert!(CacheStore::open(&file, 1).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
