//! The two-tier cell-result store: an in-memory hot map in front of
//! an on-disk, content-addressed store of record.
//!
//! - **Hot tier**: `HashMap<CellKey, Arc<Entry>>` under one mutex.
//!   Every disk hit and every store populates it, so overlapping
//!   figures in one process (fig16/fig22/fig25 sweep the same grid)
//!   pay the disk once per cell.
//! - **Store of record**: one file per cell at
//!   `<dir>/objects/<first 2 hex>/<32 hex>.cell`, written atomically
//!   (temp + rename) in the versioned, checksummed entry format of
//!   [`crate::codec`]. Lookups *probe* the filesystem — the manifest
//!   is never consulted for reads — so the store self-heals: deleting
//!   any object just makes that cell recompute.
//! - **Manifest**: an advisory append-only completion log (see
//!   [`crate::manifest`]) driving `--resume` reporting.
//!
//! Every outcome is counted ([`CacheStats`]) and mirrored into
//! `cache.*` registry counters while telemetry is enabled, which is
//! how the hit/miss counters reach the `cache` stanza of
//! `desc-run-report/v1` and `bench_pipeline`'s cache axis. `cache.*`
//! names are excluded from metric capture and from determinism
//! comparisons, like `pool.*`.
//!
//! A lookup never returns a wrong or stale result class: entries are
//! validated (checksum, version, key echo) at decode time, and a
//! version-mismatched or corrupt entry is counted and treated as a
//! miss — the cell recomputes and the entry is overwritten.

use crate::codec::{decode_entry, encode_entry, CodecError, Entry};
use crate::hash::CellKey;
use crate::manifest::{write_atomic, Manifest};
use desc_telemetry::Snapshot;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Point-in-time store counters (also mirrored as `cache.*` registry
/// counters while telemetry is enabled).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the in-memory hot map.
    pub hits_memory: u64,
    /// Lookups served from the on-disk store of record.
    pub hits_disk: u64,
    /// Lookups that found no usable entry.
    pub misses: u64,
    /// Entries written.
    pub stores: u64,
    /// Structurally sound entries skipped for carrying a different
    /// cell-schema version.
    pub version_mismatches: u64,
    /// Corrupt/unreadable entries and failed writes (all non-fatal).
    pub errors: u64,
}

impl CacheStats {
    /// Total hits across both tiers.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits_memory + self.hits_disk
    }
}

#[derive(Debug, Default)]
struct StatCells {
    hits_memory: AtomicU64,
    hits_disk: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    version_mismatches: AtomicU64,
    errors: AtomicU64,
}

/// The two-tier content-addressed cell store. Cheap to share
/// (`Arc<CacheStore>`); all methods take `&self`.
#[derive(Debug)]
pub struct CacheStore {
    dir: Option<PathBuf>,
    version: u32,
    hot: Mutex<HashMap<CellKey, Arc<Entry>>>,
    manifest: Option<Mutex<Manifest>>,
    stats: StatCells,
}

impl CacheStore {
    /// A memory-only store (hot tier without a store of record) —
    /// used by in-process warm/cold tests and available to embedders
    /// that only want intra-process dedup.
    #[must_use]
    pub fn in_memory(version: u32) -> Self {
        Self {
            dir: None,
            version,
            hot: Mutex::new(HashMap::new()),
            manifest: None,
            stats: StatCells::default(),
        }
    }

    /// Opens (creating as needed) the on-disk store at `dir`.
    ///
    /// # Errors
    ///
    /// Fails when the directory cannot be created, written (probed
    /// with an atomic write), or its manifest cannot be read — the
    /// conditions `repro` maps to its cache exit code. A *damaged*
    /// manifest is not an error (tolerant loader).
    pub fn open(dir: impl Into<PathBuf>, version: u32) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(dir.join("objects"))?;
        // Probe writability up front so a read-only directory fails
        // loudly at startup instead of degrading every store.
        let probe = dir.join(".probe");
        write_atomic(&probe, b"desc-cache")?;
        std::fs::remove_file(&probe)?;
        let manifest = Manifest::load(dir.join("manifest"))?;
        Ok(Self {
            dir: Some(dir),
            version,
            hot: Mutex::new(HashMap::new()),
            manifest: Some(Mutex::new(manifest)),
            stats: StatCells::default(),
        })
    }

    /// The backing directory, when this store has one.
    #[must_use]
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// The cell-schema version this store serves.
    #[must_use]
    pub fn version(&self) -> u32 {
        self.version
    }

    fn object_path(&self, dir: &Path, key: &CellKey) -> PathBuf {
        let hex = key.hex();
        dir.join("objects").join(&hex[..2]).join(format!("{hex}.cell"))
    }

    /// Looks up `key`: hot map first, then a disk probe. With
    /// `require_delta`, an entry without a captured metric delta is
    /// treated as a miss (a telemetry-enabled run must be able to
    /// replay the cell's metrics; recomputing overwrites the entry
    /// with one that has them).
    pub fn lookup(&self, key: &CellKey, require_delta: bool) -> Option<Arc<Entry>> {
        let usable = |e: &Entry| !require_delta || e.delta.is_some();
        if let Some(entry) = self.hot.lock().expect("hot map poisoned").get(key) {
            if usable(entry) {
                self.bump(&self.stats.hits_memory, "cache.hits_memory");
                return Some(Arc::clone(entry));
            }
            self.bump(&self.stats.misses, "cache.misses");
            return None;
        }
        let Some(dir) = &self.dir else {
            self.bump(&self.stats.misses, "cache.misses");
            return None;
        };
        let path = self.object_path(dir, key);
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) => {
                if e.kind() != std::io::ErrorKind::NotFound {
                    self.bump(&self.stats.errors, "cache.errors");
                }
                self.bump(&self.stats.misses, "cache.misses");
                return None;
            }
        };
        match decode_entry(&bytes, self.version, key) {
            Ok(entry) if usable(&entry) => {
                let entry = Arc::new(entry);
                self.hot
                    .lock()
                    .expect("hot map poisoned")
                    .insert(*key, Arc::clone(&entry));
                self.bump(&self.stats.hits_disk, "cache.hits_disk");
                Some(entry)
            }
            Ok(_) => {
                self.bump(&self.stats.misses, "cache.misses");
                None
            }
            Err(CodecError::Version { .. }) => {
                self.bump(&self.stats.version_mismatches, "cache.version_mismatches");
                self.bump(&self.stats.misses, "cache.misses");
                None
            }
            Err(_) => {
                self.bump(&self.stats.errors, "cache.errors");
                self.bump(&self.stats.misses, "cache.misses");
                None
            }
        }
    }

    /// Reports that an entry returned by [`CacheStore::lookup`] had an
    /// undecodable payload (caller-level codec disagreement). Evicts
    /// it from the hot tier so the recompute's [`CacheStore::store`]
    /// is what future lookups see.
    pub fn note_corrupt(&self, key: &CellKey) {
        self.hot.lock().expect("hot map poisoned").remove(key);
        self.bump(&self.stats.errors, "cache.errors");
    }

    /// Stores a computed cell under `key` (hot map immediately; object
    /// file atomically; manifest recorded last, so a manifest entry
    /// implies its object was published). Write failures are counted,
    /// never raised — a broken disk degrades the cache to memory-only
    /// behavior rather than failing the run.
    pub fn store(&self, key: &CellKey, payload: Vec<u8>, delta: Option<Snapshot>) {
        let entry = Arc::new(Entry { payload, delta });
        self.hot
            .lock()
            .expect("hot map poisoned")
            .insert(*key, Arc::clone(&entry));
        self.bump(&self.stats.stores, "cache.stores");
        let Some(dir) = &self.dir else { return };
        let bytes = encode_entry(self.version, key, &entry.payload, entry.delta.as_ref());
        let path = self.object_path(dir, key);
        let written = path
            .parent()
            .map(std::fs::create_dir_all)
            .unwrap_or(Ok(()))
            .and_then(|()| write_atomic(&path, &bytes));
        if written.is_err() {
            self.bump(&self.stats.errors, "cache.errors");
            return;
        }
        if let Some(manifest) = &self.manifest {
            let recorded = manifest
                .lock()
                .expect("manifest poisoned")
                .record(*key, self.version);
            if recorded.is_err() {
                self.bump(&self.stats.errors, "cache.errors");
            }
        }
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits_memory: self.stats.hits_memory.load(Ordering::Relaxed),
            hits_disk: self.stats.hits_disk.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            stores: self.stats.stores.load(Ordering::Relaxed),
            version_mismatches: self.stats.version_mismatches.load(Ordering::Relaxed),
            errors: self.stats.errors.load(Ordering::Relaxed),
        }
    }

    /// `(key, version)` entries in the manifest (0 for memory-only
    /// stores).
    #[must_use]
    pub fn manifest_cells(&self) -> u64 {
        self.manifest
            .as_ref()
            .map(|m| m.lock().expect("manifest poisoned").len() as u64)
            .unwrap_or(0)
    }

    /// Malformed manifest lines dropped at load (0 for memory-only).
    #[must_use]
    pub fn manifest_skipped(&self) -> u64 {
        self.manifest
            .as_ref()
            .map(|m| m.lock().expect("manifest poisoned").skipped())
            .unwrap_or(0)
    }

    fn bump(&self, cell: &AtomicU64, metric: &str) {
        cell.fetch_add(1, Ordering::Relaxed);
        // Cell-granular (not per-access), so the registry lookup is
        // fine without a cached handle.
        if desc_telemetry::enabled() {
            desc_telemetry::global().counter(metric).incr();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> CellKey {
        CellKey { hi: n.wrapping_mul(0x9e37_79b9_7f4a_7c15), lo: n }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("desc-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_store_round_trip_and_stats() {
        let store = CacheStore::in_memory(1);
        assert!(store.lookup(&key(1), false).is_none());
        store.store(&key(1), vec![1, 2, 3], None);
        let hit = store.lookup(&key(1), false).expect("hot hit");
        assert_eq!(hit.payload, vec![1, 2, 3]);
        // An entry without a delta is unusable when one is required.
        assert!(store.lookup(&key(1), true).is_none());
        let stats = store.stats();
        assert_eq!(
            (stats.hits_memory, stats.misses, stats.stores),
            (1, 2, 1),
            "{stats:?}"
        );
    }

    #[test]
    fn disk_store_survives_reopen_like_a_new_process() {
        let dir = tmp_dir("reopen");
        {
            let store = CacheStore::open(&dir, 1).unwrap();
            store.store(&key(7), b"result".to_vec(), None);
            assert_eq!(store.manifest_cells(), 1);
        }
        let store = CacheStore::open(&dir, 1).unwrap();
        let hit = store.lookup(&key(7), false).expect("disk hit");
        assert_eq!(hit.payload, b"result");
        assert_eq!(store.stats().hits_disk, 1);
        // Second lookup is served hot.
        store.lookup(&key(7), false).unwrap();
        assert_eq!(store.stats().hits_memory, 1);
        assert_eq!(store.manifest_cells(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_bump_invalidates_without_error() {
        let dir = tmp_dir("version");
        CacheStore::open(&dir, 1).unwrap().store(&key(3), vec![9], None);
        let newer = CacheStore::open(&dir, 2).unwrap();
        assert!(newer.lookup(&key(3), false).is_none());
        let stats = newer.stats();
        assert_eq!((stats.version_mismatches, stats.errors, stats.misses), (1, 0, 1));
        // Recompute overwrites under the new version.
        newer.store(&key(3), vec![10], None);
        assert_eq!(
            CacheStore::open(&dir, 2).unwrap().lookup(&key(3), false).unwrap().payload,
            vec![10]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_object_is_a_counted_miss() {
        let dir = tmp_dir("corrupt");
        let store = CacheStore::open(&dir, 1).unwrap();
        store.store(&key(5), vec![1, 2, 3], None);
        let path = store.object_path(store.dir().unwrap(), &key(5));
        // Truncate the object (a state atomic writes cannot produce;
        // simulates external damage).
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let fresh = CacheStore::open(&dir, 1).unwrap();
        assert!(fresh.lookup(&key(5), false).is_none());
        let stats = fresh.stats();
        assert_eq!((stats.errors, stats.misses), (1, 1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delta_round_trips_through_disk() {
        let dir = tmp_dir("delta");
        let delta = Snapshot {
            metrics: vec![(
                "sim.test.counter".to_owned(),
                desc_telemetry::MetricValue::Counter(42),
            )],
        };
        CacheStore::open(&dir, 1).unwrap().store(&key(8), vec![0], Some(delta.clone()));
        let store = CacheStore::open(&dir, 1).unwrap();
        let hit = store.lookup(&key(8), true).expect("delta-bearing hit");
        assert_eq!(hit.delta.as_ref().unwrap().metrics, delta.metrics);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_a_file_as_cache_dir() {
        let dir = tmp_dir("notadir");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("plain-file");
        std::fs::write(&file, b"x").unwrap();
        assert!(CacheStore::open(&file, 1).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
