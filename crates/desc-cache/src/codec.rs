//! Compact in-tree binary codec for cached cell entries.
//!
//! All integers are fixed-width little-endian; floats are IEEE-754
//! bit patterns (`f64::to_bits`), so decode(encode(x)) is **bitwise**
//! identity — the property the warm-cache byte-identical-CSV contract
//! rests on. Byte strings are `u32` length-prefixed.
//!
//! On-disk entry layout (everything the store writes per cell):
//!
//! ```text
//! magic    b"DCC1"                      4 bytes
//! version  u32   cell-schema version
//! key      u64 hi, u64 lo              echo of the content address
//! flags    u8    bit0 = has metric delta
//! payload  u32 len + bytes             cell result (caller-defined)
//! delta    u32 len + bytes             metric snapshot, iff flags bit0
//! check    u64                         SipHash-2-4 of all prior bytes
//! ```
//!
//! The version field makes invalidation explicit: a decoder only
//! accepts its own version ([`CodecError::Version`] otherwise, which
//! the store maps to recompute-and-overwrite, never a wrong figure).
//! The key echo catches objects renamed or copied to the wrong
//! address; the trailing checksum catches truncation and bit rot —
//! relevant because a killed `repro` must never poison `--resume`
//! (writes are also temp-file + rename, so a torn write is unreachable
//! short of filesystem corruption).

use crate::hash::{CellKey, SipHasher24};
use desc_telemetry::{MetricValue, Snapshot, HISTOGRAM_BUCKETS};

/// Magic prefix of every cache object file.
pub const ENTRY_MAGIC: [u8; 4] = *b"DCC1";

/// Fixed SipHash-2-4 key for the entry checksum (integrity only, not
/// authentication — the cache directory is trusted local state).
const CHECK_KEY: (u64, u64) = (0x6465_7363_2d63_6163, 0x6865_2f63_6865_636b); // "desc-cache/check"

/// Why a byte buffer failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes than the field being read required.
    Truncated,
    /// Leading magic was not [`ENTRY_MAGIC`].
    BadMagic,
    /// Entry was written under a different cell-schema version.
    Version {
        /// Version found in the entry header.
        found: u32,
        /// Version this store expects.
        expected: u32,
    },
    /// Entry header's key echo disagrees with the requested address.
    KeyMismatch,
    /// Trailing checksum disagrees with the content.
    Checksum,
    /// Structurally invalid content (bad tag, trailing bytes, ...).
    Malformed(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "truncated entry"),
            Self::BadMagic => write!(f, "bad entry magic"),
            Self::Version { found, expected } => {
                write!(f, "cell-schema version {found} (expected {expected})")
            }
            Self::KeyMismatch => write!(f, "entry key does not match its address"),
            Self::Checksum => write!(f, "entry checksum mismatch"),
            Self::Malformed(what) => write!(f, "malformed entry: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only byte writer with fixed-width primitive encodings.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// A fresh empty encoder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its exact bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a `u32` length prefix and the raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u32(u32::try_from(bytes.len()).expect("chunk under 4 GiB"));
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// The encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor-based reader matching [`Encoder`]'s encodings.
#[derive(Debug)]
pub struct Decoder<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Reads from the start of `data`.
    #[must_use]
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated)?;
        if end > self.data.len() {
            return Err(CodecError::Truncated);
        }
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, CodecError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| CodecError::Malformed("non-UTF-8 string"))
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Succeeds only when every byte has been consumed.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::Malformed("trailing bytes"))
        }
    }
}

fn checksum(bytes: &[u8]) -> u64 {
    let mut h = SipHasher24::new(CHECK_KEY.0, CHECK_KEY.1);
    h.write(bytes);
    h.finish()
}

/// Serializes one store entry: the cell payload plus its optional
/// captured metric delta, framed with version, key echo, and
/// checksum.
#[must_use]
pub fn encode_entry(
    version: u32,
    key: &CellKey,
    payload: &[u8],
    delta: Option<&Snapshot>,
) -> Vec<u8> {
    let mut e = Encoder::new();
    e.buf.extend_from_slice(&ENTRY_MAGIC);
    e.put_u32(version);
    e.put_u64(key.hi);
    e.put_u64(key.lo);
    e.put_u8(u8::from(delta.is_some()));
    e.put_bytes(payload);
    if let Some(delta) = delta {
        e.put_bytes(&encode_snapshot(delta));
    }
    let mut buf = e.into_bytes();
    let check = checksum(&buf);
    buf.extend_from_slice(&check.to_le_bytes());
    buf
}

/// A decoded store entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// The cell result bytes (caller-defined encoding).
    pub payload: Vec<u8>,
    /// Captured metric delta, when the entry was written with
    /// telemetry enabled.
    pub delta: Option<Snapshot>,
}

impl Entry {
    /// Approximate resident size of this entry in bytes, used by the
    /// store's hot-tier byte budget. Deliberately an estimate (heap
    /// payload + a fixed-cost model of the delta snapshot + container
    /// overhead): the budget bounds memory *order*, it is not an
    /// allocator audit.
    #[must_use]
    pub fn approx_bytes(&self) -> u64 {
        let payload = self.payload.len() as u64;
        let delta = self.delta.as_ref().map_or(0, |snapshot| {
            snapshot
                .metrics
                .iter()
                .map(|(name, value)| {
                    let value_bytes = match value {
                        MetricValue::Counter(_) | MetricValue::Gauge(_) => 8,
                        MetricValue::Histogram { .. } => 16 + 8 * HISTOGRAM_BUCKETS as u64,
                    };
                    name.len() as u64 + 48 + value_bytes
                })
                .sum()
        });
        payload + delta + 96
    }
}

/// Decodes and fully validates one store entry addressed by `key`.
///
/// # Errors
///
/// Any [`CodecError`]; [`CodecError::Version`] specifically marks a
/// structurally sound entry from another schema version (counted
/// separately by the store, recomputed either way).
pub fn decode_entry(bytes: &[u8], version: u32, key: &CellKey) -> Result<Entry, CodecError> {
    // Checksum first: a truncated or corrupted file must not surface
    // as a version or key error.
    if bytes.len() < ENTRY_MAGIC.len() + 8 {
        return Err(CodecError::Truncated);
    }
    let (content, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("8-byte checksum"));
    if checksum(content) != stored {
        return Err(CodecError::Checksum);
    }
    let mut d = Decoder::new(content);
    if d.take(4)? != ENTRY_MAGIC {
        return Err(CodecError::BadMagic);
    }
    let found = d.u32()?;
    if found != version {
        return Err(CodecError::Version { found, expected: version });
    }
    let (hi, lo) = (d.u64()?, d.u64()?);
    if (CellKey { hi, lo }) != *key {
        return Err(CodecError::KeyMismatch);
    }
    let flags = d.u8()?;
    if flags > 1 {
        return Err(CodecError::Malformed("unknown flags"));
    }
    let payload = d.bytes()?.to_vec();
    let delta = if flags & 1 == 1 { Some(decode_snapshot(d.bytes()?)?) } else { None };
    d.finish()?;
    Ok(Entry { payload, delta })
}

const TAG_COUNTER: u8 = 0;
const TAG_GAUGE: u8 = 1;
const TAG_HISTOGRAM: u8 = 2;

/// Serializes a metric snapshot (the captured per-cell delta).
/// Histogram buckets are sparse `(index, count)` pairs.
#[must_use]
pub fn encode_snapshot(snap: &Snapshot) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u32(u32::try_from(snap.metrics.len()).expect("metric count fits u32"));
    for (name, value) in &snap.metrics {
        e.put_str(name);
        match value {
            MetricValue::Counter(v) => {
                e.put_u8(TAG_COUNTER);
                e.put_u64(*v);
            }
            MetricValue::Gauge(v) => {
                e.put_u8(TAG_GAUGE);
                e.put_u64(*v);
            }
            MetricValue::Histogram { count, sum, buckets } => {
                e.put_u8(TAG_HISTOGRAM);
                e.put_u64(*count);
                e.put_u64(*sum);
                let nonzero = buckets.iter().filter(|&&n| n != 0).count();
                e.put_u32(u32::try_from(nonzero).expect("bucket count fits u32"));
                for (i, &n) in buckets.iter().enumerate() {
                    if n != 0 {
                        e.put_u8(u8::try_from(i).expect("bucket index fits u8"));
                        e.put_u64(n);
                    }
                }
            }
        }
    }
    e.into_bytes()
}

/// Decodes a metric snapshot written by [`encode_snapshot`].
///
/// # Errors
///
/// Any [`CodecError`] on truncated or structurally invalid input.
pub fn decode_snapshot(bytes: &[u8]) -> Result<Snapshot, CodecError> {
    let mut d = Decoder::new(bytes);
    let n = d.u32()? as usize;
    let mut metrics = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let name = d.str()?.to_owned();
        let value = match d.u8()? {
            TAG_COUNTER => MetricValue::Counter(d.u64()?),
            TAG_GAUGE => MetricValue::Gauge(d.u64()?),
            TAG_HISTOGRAM => {
                let count = d.u64()?;
                let sum = d.u64()?;
                let mut buckets = Box::new([0u64; HISTOGRAM_BUCKETS]);
                for _ in 0..d.u32()? {
                    let i = d.u8()? as usize;
                    if i >= HISTOGRAM_BUCKETS {
                        return Err(CodecError::Malformed("bucket index out of range"));
                    }
                    buckets[i] = d.u64()?;
                }
                MetricValue::Histogram { count, sum, buckets }
            }
            _ => return Err(CodecError::Malformed("unknown metric tag")),
        };
        metrics.push((name, value));
    }
    d.finish()?;
    Ok(Snapshot { metrics })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> CellKey {
        CellKey { hi: 0xdead_beef_0123_4567, lo: 0x89ab_cdef_7654_3210 }
    }

    fn sample_snapshot() -> Snapshot {
        let mut buckets = Box::new([0u64; HISTOGRAM_BUCKETS]);
        buckets[0] = 2;
        buckets[64] = 1;
        Snapshot {
            metrics: vec![
                ("a.count".to_owned(), MetricValue::Counter(7)),
                ("a.gauge".to_owned(), MetricValue::Gauge(u64::MAX)),
                (
                    "a.hist".to_owned(),
                    MetricValue::Histogram { count: 3, sum: u64::MAX, buckets },
                ),
            ],
        }
    }

    #[test]
    fn primitives_round_trip_bitwise() {
        let mut e = Encoder::new();
        e.put_u8(0xab);
        e.put_u32(u32::MAX);
        e.put_u64(u64::MAX);
        e.put_f64(-0.0);
        e.put_f64(f64::NAN);
        // A payload with no short decimal representation.
        let awkward = f64::from_bits(0x3ff0_7ae1_47ae_147c);
        e.put_f64(awkward);
        e.put_str("ärger");
        e.put_bytes(&[]);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.u8().unwrap(), 0xab);
        assert_eq!(d.u32().unwrap(), u32::MAX);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(d.f64().unwrap().to_bits(), f64::NAN.to_bits());
        assert_eq!(d.f64().unwrap().to_bits(), awkward.to_bits());
        assert_eq!(d.str().unwrap(), "ärger");
        assert_eq!(d.bytes().unwrap(), &[] as &[u8]);
        d.finish().unwrap();
    }

    #[test]
    fn snapshot_round_trips() {
        let snap = sample_snapshot();
        let back = decode_snapshot(&encode_snapshot(&snap)).unwrap();
        assert_eq!(back.metrics, snap.metrics);
    }

    #[test]
    fn entry_round_trips_with_and_without_delta() {
        let payload = vec![1u8, 2, 3, 4, 5];
        let with = encode_entry(3, &key(), &payload, Some(&sample_snapshot()));
        let entry = decode_entry(&with, 3, &key()).unwrap();
        assert_eq!(entry.payload, payload);
        assert_eq!(entry.delta.as_ref().map(|d| d.metrics.len()), Some(3));
        let without = encode_entry(3, &key(), &payload, None);
        let entry = decode_entry(&without, 3, &key()).unwrap();
        assert_eq!(entry.payload, payload);
        assert!(entry.delta.is_none());
    }

    #[test]
    fn entry_rejects_version_key_and_corruption() {
        let bytes = encode_entry(1, &key(), b"payload", None);
        assert_eq!(
            decode_entry(&bytes, 2, &key()),
            Err(CodecError::Version { found: 1, expected: 2 })
        );
        let other = CellKey { hi: 1, lo: 2 };
        assert_eq!(decode_entry(&bytes, 1, &other), Err(CodecError::KeyMismatch));
        // Truncation and single-bit corruption both fail the checksum.
        assert!(decode_entry(&bytes[..bytes.len() - 1], 1, &key()).is_err());
        let mut flipped = bytes.clone();
        flipped[ENTRY_MAGIC.len() + 4] ^= 0x40;
        assert!(decode_entry(&flipped, 1, &key()).is_err());
        assert_eq!(decode_entry(&[], 1, &key()), Err(CodecError::Truncated));
    }

    #[test]
    fn snapshot_rejects_malformed_input() {
        assert!(decode_snapshot(&[1, 0, 0]).is_err());
        let mut e = Encoder::new();
        e.put_u32(1);
        e.put_str("x");
        e.put_u8(9); // unknown tag
        e.put_u64(0);
        assert_eq!(
            decode_snapshot(&e.into_bytes()),
            Err(CodecError::Malformed("unknown metric tag"))
        );
    }
}
