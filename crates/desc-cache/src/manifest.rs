//! The append-only completion manifest behind `repro --resume`.
//!
//! One text file (`manifest` in the cache directory), one line per
//! completed cell: `<32-hex key> v<schema version>`. Lookups never
//! consult the manifest — the object store is content-addressed and
//! self-validating — so the manifest is *advisory*: it tells a
//! resumed run how many cells the previous run(s) already banked and
//! gives humans a greppable completion log.
//!
//! Durability rules:
//!
//! - Every append rewrites the file via temp-file + rename, so a
//!   killed `repro` leaves either the old or the new manifest, never
//!   a torn one.
//! - The loader is tolerant anyway (defense in depth for manifests
//!   written by pre-atomic tools or damaged externally): malformed
//!   lines are counted and skipped, and the next append rewrites the
//!   file clean. A damaged manifest can therefore never poison
//!   `--resume` — at worst a cell is recomputed and re-recorded.

use crate::hash::CellKey;
use std::collections::BTreeSet;
use std::io::Write;
use std::path::{Path, PathBuf};

/// In-memory view of the manifest file, rewritten atomically on every
/// append.
#[derive(Debug)]
pub struct Manifest {
    path: PathBuf,
    entries: BTreeSet<(CellKey, u32)>,
    skipped: u64,
}

impl Manifest {
    /// Loads `path`, tolerating a missing file (empty manifest) and
    /// malformed lines (counted in [`Manifest::skipped`], dropped on
    /// the next rewrite).
    ///
    /// # Errors
    ///
    /// Only real I/O errors (e.g. unreadable file); a damaged file is
    /// not an error.
    pub fn load(path: PathBuf) -> std::io::Result<Self> {
        let mut entries = BTreeSet::new();
        let mut skipped = 0u64;
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                for line in text.lines() {
                    let line = line.trim();
                    if line.is_empty() {
                        continue;
                    }
                    match parse_line(line) {
                        Some(entry) => {
                            entries.insert(entry);
                        }
                        None => skipped += 1,
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok(Self { path, entries, skipped })
    }

    /// True when `key` was recorded under `version`.
    #[must_use]
    pub fn contains(&self, key: &CellKey, version: u32) -> bool {
        self.entries.contains(&(*key, version))
    }

    /// Number of recorded `(key, version)` entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Malformed lines dropped by [`Manifest::load`].
    #[must_use]
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Records a completed cell and atomically rewrites the file.
    /// Recording an already-present entry is a no-op (no I/O).
    ///
    /// # Errors
    ///
    /// Propagates write/rename failures; the in-memory set keeps the
    /// entry either way so the next successful append persists it.
    pub fn record(&mut self, key: CellKey, version: u32) -> std::io::Result<()> {
        if !self.entries.insert((key, version)) {
            return Ok(());
        }
        self.rewrite()
    }

    fn rewrite(&self) -> std::io::Result<()> {
        let mut text = String::with_capacity(self.entries.len() * 40);
        for (key, version) in &self.entries {
            text.push_str(&key.hex());
            text.push_str(" v");
            text.push_str(&version.to_string());
            text.push('\n');
        }
        write_atomic(&self.path, text.as_bytes())
    }
}

fn parse_line(line: &str) -> Option<(CellKey, u32)> {
    let (hex, version) = line.split_once(' ')?;
    let key = CellKey::from_hex(hex)?;
    let version = version.strip_prefix('v')?.parse().ok()?;
    Some((key, version))
}

/// Writes `bytes` to `path` atomically: temp file in the same
/// directory (same filesystem, so the rename cannot cross devices),
/// then rename over the target. A crash at any point leaves either
/// the old file or the new one, never a torn mix.
///
/// # Errors
///
/// Propagates create/write/rename failures; the temp file is removed
/// on a failed rename.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let stem = path.file_name().and_then(|n| n.to_str()).unwrap_or("entry");
    let tmp = dir.join(format!(".{stem}.tmp.{}", std::process::id()));
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        // Contents reach the disk before the rename publishes them.
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> CellKey {
        CellKey { hi: n, lo: !n }
    }

    #[test]
    fn record_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("desc-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip");
        let mut m = Manifest::load(path.clone()).unwrap();
        assert!(m.is_empty());
        m.record(key(1), 1).unwrap();
        m.record(key(2), 1).unwrap();
        m.record(key(1), 1).unwrap(); // duplicate: no-op
        let back = Manifest::load(path.clone()).unwrap();
        assert_eq!(back.len(), 2);
        assert!(back.contains(&key(1), 1));
        assert!(!back.contains(&key(1), 2));
        assert_eq!(back.skipped(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damaged_lines_are_skipped_and_dropped_on_rewrite() {
        let dir = std::env::temp_dir().join(format!("desc-manifest-dmg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("damaged");
        let good = format!("{} v1\n", key(9).hex());
        // A valid line, junk, and a torn tail (pre-atomic-write style).
        std::fs::write(&path, format!("{good}not a manifest line\n{}", &good[..10])).unwrap();
        let mut m = Manifest::load(path.clone()).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m.skipped(), 2);
        m.record(key(10), 1).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2, "rewrite drops damaged lines");
        assert!(Manifest::load(path).unwrap().skipped() == 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn atomic_write_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join(format!("desc-manifest-tmp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("target");
        write_atomic(&path, b"one").unwrap();
        write_atomic(&path, b"two").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"two");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n != "target")
            .collect();
        assert!(leftovers.is_empty(), "stray files: {leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
