//! In-tree deterministic hashing for cache keys.
//!
//! Rust's `std::hash` deliberately randomizes and does not promise
//! stability across processes or releases, so cache keys are derived
//! with an in-tree SipHash-2-4 (the workspace is hermetic — no
//! external hash crates). Two independent fixed-key SipHash instances
//! run over the same byte stream to produce a 128-bit [`CellKey`]:
//! at ~10⁴ distinct cells per full sweep, accidental collisions are
//! out of reach, and content addressing only has to defend against
//! accidents — the cache directory is trusted local state, not an
//! adversarial input.
//!
//! [`KeyHasher`] is the typed front end: every write is
//! **length-prefixed or fixed-width**, so field boundaries cannot
//! alias (`("ab", "c")` and `("a", "bc")` hash differently), and a
//! leading domain string separates key families (`"app"` cells can
//! never collide with `"snuca"` cells).

/// 128-bit content-address of one cell computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellKey {
    /// High 64 bits (first SipHash instance).
    pub hi: u64,
    /// Low 64 bits (second SipHash instance).
    pub lo: u64,
}

impl CellKey {
    /// Fixed-width lowercase hex form, 32 chars — used for object
    /// file names and manifest lines.
    #[must_use]
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Parses the [`CellKey::hex`] form back; `None` unless the input
    /// is exactly 32 lowercase/uppercase hex chars.
    #[must_use]
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(Self { hi, lo })
    }
}

/// SipHash-2-4 over an incremental byte stream with a caller-chosen
/// 128-bit key. Matches the reference implementation (verified by the
/// paper's test vectors in this module's tests).
#[derive(Debug, Clone)]
pub struct SipHasher24 {
    v0: u64,
    v1: u64,
    v2: u64,
    v3: u64,
    /// Pending input bytes (< 8) not yet compressed.
    buf: [u8; 8],
    buf_len: usize,
    /// Total bytes written, mod 256 — folded into the final block.
    len: u64,
}

impl SipHasher24 {
    /// A hasher keyed by `(k0, k1)`.
    #[must_use]
    pub fn new(k0: u64, k1: u64) -> Self {
        Self {
            v0: k0 ^ 0x736f_6d65_7073_6575,
            v1: k1 ^ 0x646f_7261_6e64_6f6d,
            v2: k0 ^ 0x6c79_6765_6e65_7261,
            v3: k1 ^ 0x7465_6462_7974_6573,
            buf: [0; 8],
            buf_len: 0,
            len: 0,
        }
    }

    #[inline]
    fn round(&mut self) {
        self.v0 = self.v0.wrapping_add(self.v1);
        self.v1 = self.v1.rotate_left(13);
        self.v1 ^= self.v0;
        self.v0 = self.v0.rotate_left(32);
        self.v2 = self.v2.wrapping_add(self.v3);
        self.v3 = self.v3.rotate_left(16);
        self.v3 ^= self.v2;
        self.v0 = self.v0.wrapping_add(self.v3);
        self.v3 = self.v3.rotate_left(21);
        self.v3 ^= self.v0;
        self.v2 = self.v2.wrapping_add(self.v1);
        self.v1 = self.v1.rotate_left(17);
        self.v1 ^= self.v2;
        self.v2 = self.v2.rotate_left(32);
    }

    #[inline]
    fn compress(&mut self, m: u64) {
        self.v3 ^= m;
        self.round();
        self.round();
        self.v0 ^= m;
    }

    /// Feeds `bytes` into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        self.len = self.len.wrapping_add(bytes.len() as u64);
        let mut rest = bytes;
        if self.buf_len > 0 {
            let take = rest.len().min(8 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len < 8 {
                return;
            }
            let m = u64::from_le_bytes(self.buf);
            self.compress(m);
            self.buf_len = 0;
        }
        let mut chunks = rest.chunks_exact(8);
        for chunk in &mut chunks {
            let m = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.compress(m);
        }
        let tail = chunks.remainder();
        self.buf[..tail.len()].copy_from_slice(tail);
        self.buf_len = tail.len();
    }

    /// Finalizes (without consuming the hasher state it clones, so
    /// callers can keep writing).
    #[must_use]
    pub fn finish(&self) -> u64 {
        let mut s = self.clone();
        let mut last = [0u8; 8];
        last[..s.buf_len].copy_from_slice(&s.buf[..s.buf_len]);
        last[7] = (s.len & 0xff) as u8;
        let m = u64::from_le_bytes(last);
        s.compress(m);
        s.v2 ^= 0xff;
        s.round();
        s.round();
        s.round();
        s.round();
        s.v0 ^ s.v1 ^ s.v2 ^ s.v3
    }
}

/// The two fixed key pairs behind every [`CellKey`]. Arbitrary but
/// frozen: changing them invalidates every existing cache directory,
/// exactly like bumping the cell schema version.
const KEY_A: (u64, u64) = (0x6465_7363_2d63_6163, 0x6865_2f6b_6579_2f41); // "desc-cache/key/A"
const KEY_B: (u64, u64) = (0x6465_7363_2d63_6163, 0x6865_2f6b_6579_2f42); // "desc-cache/key/B"

/// Typed, field-separated front end over two [`SipHasher24`]s.
///
/// Every write is length-prefixed (byte strings) or fixed-width
/// (integers / float bit patterns), so adjacent fields can never
/// alias. Create one per key derivation with a domain string.
#[derive(Debug, Clone)]
pub struct KeyHasher {
    a: SipHasher24,
    b: SipHasher24,
}

impl KeyHasher {
    /// A fresh hasher for the key family `domain` (e.g. `"app"`).
    #[must_use]
    pub fn new(domain: &str) -> Self {
        let mut h = Self {
            a: SipHasher24::new(KEY_A.0, KEY_A.1),
            b: SipHasher24::new(KEY_B.0, KEY_B.1),
        };
        h.write_str(domain);
        h
    }

    fn write_raw(&mut self, bytes: &[u8]) {
        self.a.write(bytes);
        self.b.write(bytes);
    }

    /// Writes a length-prefixed byte string.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        self.write_raw(bytes);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// Writes a fixed-width little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.write_raw(&v.to_le_bytes());
    }

    /// Writes a fixed-width little-endian `u32`.
    pub fn write_u32(&mut self, v: u32) {
        self.write_raw(&v.to_le_bytes());
    }

    /// Writes an `f64` as its exact IEEE-754 bit pattern (no rounding,
    /// `-0.0` ≠ `0.0`, every NaN payload distinct — bitwise identity
    /// is the contract, same as the codec).
    pub fn write_f64_bits(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The 128-bit key for everything written so far.
    #[must_use]
    pub fn finish(&self) -> CellKey {
        CellKey { hi: self.a.finish(), lo: self.b.finish() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// First entries of the SipHash-2-4 64-bit reference vectors
    /// (key `0x0706050403020100, 0x0f0e0d0c0b0a0908`, message
    /// `[0, 1, 2, ...]` of increasing length).
    #[test]
    fn siphash24_reference_vectors() {
        let expected: [u64; 3] = [0x726f_db47_dd0e_0e31, 0x74f8_39c5_93dc_67fd, 0x0d6c_8009_d9a9_4f5a];
        for (len, want) in expected.iter().enumerate() {
            let msg: Vec<u8> = (0..len as u8).collect();
            let mut h = SipHasher24::new(0x0706_0504_0302_0100, 0x0f0e_0d0c_0b0a_0908);
            h.write(&msg);
            assert_eq!(h.finish(), *want, "vector for {len}-byte message");
        }
    }

    #[test]
    fn split_writes_match_one_shot() {
        let msg: Vec<u8> = (0..=41).collect();
        let mut whole = SipHasher24::new(1, 2);
        whole.write(&msg);
        for split in [1, 3, 7, 8, 9, 20] {
            let mut parts = SipHasher24::new(1, 2);
            for chunk in msg.chunks(split) {
                parts.write(chunk);
            }
            assert_eq!(parts.finish(), whole.finish(), "split at {split}");
        }
    }

    #[test]
    fn field_boundaries_do_not_alias() {
        let mut ab_c = KeyHasher::new("t");
        ab_c.write_str("ab");
        ab_c.write_str("c");
        let mut a_bc = KeyHasher::new("t");
        a_bc.write_str("a");
        a_bc.write_str("bc");
        assert_ne!(ab_c.finish(), a_bc.finish());
    }

    #[test]
    fn domains_separate_key_families() {
        let mut app = KeyHasher::new("app");
        app.write_u64(7);
        let mut snuca = KeyHasher::new("snuca");
        snuca.write_u64(7);
        assert_ne!(app.finish(), snuca.finish());
    }

    #[test]
    fn float_bit_patterns_are_distinguished() {
        let mut pos = KeyHasher::new("t");
        pos.write_f64_bits(0.0);
        let mut neg = KeyHasher::new("t");
        neg.write_f64_bits(-0.0);
        assert_ne!(pos.finish(), neg.finish());
    }

    #[test]
    fn hex_round_trips() {
        let key = CellKey { hi: 0x0123_4567_89ab_cdef, lo: 0xfedc_ba98_7654_3210 };
        let hex = key.hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(CellKey::from_hex(&hex), Some(key));
        assert_eq!(CellKey::from_hex("zz"), None);
        assert_eq!(CellKey::from_hex(&hex[..31]), None);
    }

    #[test]
    fn determinism_across_instances() {
        let build = || {
            let mut h = KeyHasher::new("app");
            h.write_str("paper:ZeroSkippedDesc");
            h.write_u64(2013);
            h.write_u32(4000);
            h.write_f64_bits(1.03);
            h.finish()
        };
        assert_eq!(build(), build());
    }
}
