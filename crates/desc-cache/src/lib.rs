//! Two-tier content-addressed cell-result cache for DESC sweeps.
//!
//! The paper's figure grid is massively redundant — fig16/fig22/fig25
//! and the ablations sweep overlapping `(config, scheme, seed, scale)`
//! cells — and a full `repro all` recomputes every cell from scratch.
//! This crate memoizes completed cells so repeat and overlapping
//! sweeps are near-free and an interrupted run resumes where it
//! stopped:
//!
//! - [`hash`] — an in-tree deterministic hasher ([`KeyHasher`], two
//!   fixed-key SipHash-2-4 lanes) producing the 128-bit [`CellKey`]
//!   content address of a cell spec. Stable across processes, `--jobs`
//!   and `--shards`; any field change changes the key.
//! - [`codec`] — a compact fixed-width binary codec ([`Encoder`] /
//!   [`Decoder`]) and the versioned, checksummed on-disk entry format.
//!   Floats travel as exact bit patterns, so a warm hit reproduces the
//!   cold result *bitwise*.
//! - [`store`] — the two-tier [`CacheStore`]: a bounded LRU hot tier
//!   (`DESC_CACHE_MEM_BYTES`) in front of an on-disk store of record
//!   (one atomic-written object file per cell), with hit/miss/store/
//!   eviction counters surfaced as `cache.*` metrics and a
//!   single-flight registry ([`CacheStore::begin_flight`]) so
//!   concurrent callers compute each cold cell exactly once.
//! - [`manifest`] — the advisory append-only completion log behind
//!   `repro --resume`, rewritten atomically per append and tolerant
//!   of damage.
//!
//! What a cached entry *means* (which config/profile fields are
//! hashed, what the payload encodes, when the schema version bumps)
//! is owned by `desc-experiments`; this crate only promises that
//! lookups return exactly what was stored, or nothing.
//!
//! See `docs/CACHE.md` for the key-derivation and invalidation rules.
//!
//! # Example
//!
//! ```
//! use desc_cache::{CacheStore, KeyHasher};
//!
//! let store = CacheStore::in_memory(1);
//! let mut h = KeyHasher::new("example");
//! h.write_str("scheme:desc:w128");
//! h.write_u64(2013); // seed
//! let key = h.finish();
//! assert!(store.lookup(&key, false).is_none());
//! store.store(&key, vec![1, 2, 3], None);
//! assert_eq!(store.lookup(&key, false).unwrap().payload, vec![1, 2, 3]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod hash;
pub mod manifest;
pub mod store;

pub use codec::{
    decode_entry, decode_snapshot, encode_entry, encode_snapshot, CodecError, Decoder, Encoder,
    Entry, ENTRY_MAGIC,
};
pub use hash::{CellKey, KeyHasher, SipHasher24};
pub use manifest::{write_atomic, Manifest};
pub use store::{CacheStats, CacheStore, FlightLease, FlightOutcome, DEFAULT_MEM_BYTES};
