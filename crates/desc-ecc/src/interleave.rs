//! The paper's interleaved ECC layout for DESC (Fig. 9).
//!
//! A cache block is partitioned into `S` equal data segments, each
//! protected by its own SECDED code. Chunks are then formed *across*
//! segments: data chunk `i` carries bit `i` of segment 0, bit `i` of
//! segment 1, …; parity chunk `j` likewise carries parity bit `j` of
//! every segment. A transfer error at chunk granularity (one toggle →
//! up to `S` wrong bits) therefore lands at most one wrong bit in each
//! segment's codeword, which SECDED corrects; two chunk errors land at
//! most two per segment, which SECDED detects.
//!
//! With the paper's numbers: a 512-bit block, four 128-bit segments,
//! (137,128) codes, chunk width 4 = number of segments, 9 parity
//! chunks on 9 extra wires.

use crate::secded::{DecodeOutcome, SecdedCode};
use desc_core::{Block, ChunkSize, Chunks};
use std::fmt;

/// A cache block encoded into DESC chunks with interleaved SECDED
/// protection.
///
/// # Examples
///
/// ```
/// use desc_core::Block;
/// use desc_ecc::InterleavedBlock;
///
/// let block = Block::from_bytes(&[0x5A; 64]);
/// let mut encoded = InterleavedBlock::encode_paper(&block);
///
/// // A chunk-granularity transfer error (one DESC toggle gone wrong
/// // corrupts a whole chunk — up to 4 bits at once):
/// encoded.corrupt_chunk(17, 0b1111);
///
/// let decoded = encoded.decode();
/// assert!(decoded.usable());
/// assert_eq!(decoded.block, block);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InterleavedBlock {
    code: SecdedCode,
    segments: usize,
    /// Chunk values, data chunks first then parity chunks; each chunk
    /// holds one bit per segment (bit `s` of a chunk belongs to
    /// segment `s`).
    chunks: Vec<u16>,
    data_chunks: usize,
    block_bytes: usize,
}

/// Outcome of decoding an [`InterleavedBlock`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InterleavedDecode {
    /// The reconstructed block (valid only when [`Self::usable`]).
    pub block: Block,
    /// Per-segment SECDED outcomes.
    pub outcomes: Vec<DecodeOutcome>,
}

impl InterleavedDecode {
    /// True when every segment decoded cleanly or with a corrected
    /// single error.
    #[must_use]
    pub fn usable(&self) -> bool {
        self.outcomes.iter().all(DecodeOutcome::is_usable)
    }

    /// Number of segments that required a correction.
    #[must_use]
    pub fn corrections(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_corrected()).count()
    }

    /// True when any segment reported an uncorrectable double error.
    #[must_use]
    pub fn detected_double_error(&self) -> bool {
        !self.usable()
    }
}

impl InterleavedBlock {
    /// Encodes `block` with the paper's configuration: four 128-bit
    /// segments under (137,128) SECDED, 4-bit chunks.
    ///
    /// # Panics
    ///
    /// Panics if the block is not 64 bytes.
    #[must_use]
    pub fn encode_paper(block: &Block) -> Self {
        Self::encode(block, 4, SecdedCode::c137_128())
    }

    /// Encodes `block` into `segments` interleaved SECDED codewords.
    ///
    /// # Panics
    ///
    /// Panics if the block's bits do not divide evenly into `segments`
    /// segments of `code.data_bits()` bits each.
    #[must_use]
    pub fn encode(block: &Block, segments: usize, code: SecdedCode) -> Self {
        assert!(segments > 0 && segments <= 16, "segment count {segments} out of range");
        assert_eq!(
            block.bit_len(),
            segments * code.data_bits(),
            "block of {} bits does not split into {segments} × {} segments",
            block.bit_len(),
            code.data_bits()
        );
        let seg_bytes = code.data_bits().div_ceil(8);
        // Segment s = contiguous slice of the block (paper: four
        // 128-bit data segments).
        let codewords: Vec<Vec<bool>> = (0..segments)
            .map(|s| {
                let mut data = vec![0u8; seg_bytes];
                for b in 0..code.data_bits() {
                    let i = s * code.data_bits() + b;
                    if block.bit(i) {
                        data[b / 8] |= 1 << (b % 8);
                    }
                }
                code.encode(&data)
            })
            .collect();

        // Chunk j (j < codeword_bits) carries codeword bit j of every
        // segment: bit s of the chunk = segment s's codeword bit j.
        // Data bits come first in transmission order, then parity
        // positions, so the wire layout matches Fig. 9 (parity chunks
        // on dedicated extra wires). We transmit codeword positions in
        // a fixed order: data positions ascending, then parity
        // positions ascending, then the overall parity.
        let order = Self::position_order(&code);
        let chunks: Vec<u16> = order
            .iter()
            .map(|&pos| {
                let mut v = 0u16;
                for (s, cw) in codewords.iter().enumerate() {
                    if cw[pos] {
                        v |= 1 << s;
                    }
                }
                v
            })
            .collect();
        let data_chunks = code.data_bits();
        Self { code, segments, chunks, data_chunks, block_bytes: block.byte_len() }
    }

    /// Transmission order of codeword positions: data positions first
    /// (ascending), then Hamming parity positions, then the overall
    /// parity at index 0.
    fn position_order(code: &SecdedCode) -> Vec<usize> {
        let n = code.codeword_bits() - 1;
        let mut data: Vec<usize> = (1..=n).filter(|p| !p.is_power_of_two()).collect();
        let parity: Vec<usize> = (1..=n).filter(|p| p.is_power_of_two()).collect();
        data.extend(parity);
        data.push(0);
        data
    }

    /// All chunk values in transmission order (data chunks, then
    /// parity chunks) — feed these to a DESC [`TransferScheme`] to cost
    /// the protected transfer.
    ///
    /// [`TransferScheme`]: desc_core::TransferScheme
    #[must_use]
    pub fn chunks(&self) -> &[u16] {
        &self.chunks
    }

    /// Number of data chunks (before the parity chunks).
    #[must_use]
    pub fn data_chunk_count(&self) -> usize {
        self.data_chunks
    }

    /// Number of parity chunks (the paper's "extra wires": 9 for
    /// (137,128)).
    #[must_use]
    pub fn parity_chunk_count(&self) -> usize {
        self.chunks.len() - self.data_chunks
    }

    /// The encoded payload as a [`Chunks`] value for transfer costing.
    ///
    /// # Panics
    ///
    /// Panics if the segment count exceeds 8 (chunk values would not
    /// fit the 8-bit chunk-size limit).
    #[must_use]
    pub fn as_chunks(&self) -> Chunks {
        let bits = u8::try_from(self.segments).expect("segment count fits u8");
        let size = ChunkSize::new(bits).expect("1–8 segments make a valid chunk size");
        Chunks::from_values(size, self.chunks.clone())
    }

    /// Corrupts chunk `index` by XOR-ing `mask` into its value — the
    /// model of a DESC transfer error, which garbles one chunk (up to
    /// one bit per segment).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or `mask` has bits beyond the
    /// segment count.
    pub fn corrupt_chunk(&mut self, index: usize, mask: u16) {
        assert!(index < self.chunks.len(), "chunk index {index} out of range");
        assert!(
            mask >> self.segments == 0,
            "mask {mask:#x} exceeds {} segments",
            self.segments
        );
        self.chunks[index] ^= mask;
    }

    /// Decodes the chunks back into a block, correcting per-segment
    /// single errors.
    #[must_use]
    pub fn decode(&self) -> InterleavedDecode {
        let order = Self::position_order(&self.code);
        let mut outcomes = Vec::with_capacity(self.segments);
        let mut block = Block::zeroed(self.block_bytes);
        for s in 0..self.segments {
            let mut cw = vec![false; self.code.codeword_bits()];
            for (j, &pos) in order.iter().enumerate() {
                cw[pos] = (self.chunks[j] >> s) & 1 == 1;
            }
            let outcome = self.code.decode(&mut cw);
            let data = self.code.extract_data(&cw);
            for b in 0..self.code.data_bits() {
                let bit = (data[b / 8] >> (b % 8)) & 1 == 1;
                block.set_bit(s * self.code.data_bits() + b, bit);
            }
            outcomes.push(outcome);
        }
        let decoded = InterleavedDecode { block, outcomes };
        if desc_telemetry::enabled() {
            desc_telemetry::counter!("ecc.interleave.decodes").incr();
            desc_telemetry::counter!("ecc.interleave.corrected_segments")
                .add(decoded.corrections() as u64);
            if decoded.detected_double_error() {
                desc_telemetry::counter!("ecc.interleave.uncorrectable").incr();
            }
        }
        decoded
    }
}

impl fmt::Display for InterleavedBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} × {} interleaved, {} data + {} parity chunks",
            self.segments,
            self.code,
            self.data_chunk_count(),
            self.parity_chunk_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block() -> Block {
        let bytes: Vec<u8> = (0..64).map(|i| (i * 73 + 11) as u8).collect();
        Block::from_bytes(&bytes)
    }

    #[test]
    fn paper_layout_dimensions() {
        let e = InterleavedBlock::encode_paper(&sample_block());
        assert_eq!(e.data_chunk_count(), 128);
        assert_eq!(e.parity_chunk_count(), 9); // the paper's 9 extra wires
        assert_eq!(e.chunks().len(), 137);
    }

    #[test]
    fn clean_roundtrip() {
        let block = sample_block();
        let e = InterleavedBlock::encode_paper(&block);
        let d = e.decode();
        assert!(d.usable());
        assert_eq!(d.corrections(), 0);
        assert_eq!(d.block, block);
    }

    #[test]
    fn any_single_chunk_corruption_is_corrected() {
        // The paper's guarantee: one bad chunk = ≤1 bit per segment.
        let block = sample_block();
        let clean = InterleavedBlock::encode_paper(&block);
        for index in 0..clean.chunks().len() {
            let mut e = clean.clone();
            e.corrupt_chunk(index, 0b1111); // worst case: all 4 bits
            let d = e.decode();
            assert!(d.usable(), "chunk {index} not corrected");
            assert_eq!(d.block, block, "chunk {index} data mismatch");
            assert_eq!(d.corrections(), 4, "chunk {index} corrections");
        }
    }

    #[test]
    fn partial_chunk_corruption_corrects_affected_segments_only() {
        let block = sample_block();
        let mut e = InterleavedBlock::encode_paper(&block);
        e.corrupt_chunk(42, 0b0101); // segments 0 and 2
        let d = e.decode();
        assert!(d.usable());
        assert_eq!(d.corrections(), 2);
        assert_eq!(d.block, block);
    }

    #[test]
    fn two_chunk_corruptions_are_detected() {
        // Two bad chunks = ≤2 bits per segment → every affected
        // segment must report a double error (never silently
        // miscorrect into clean).
        let block = sample_block();
        let mut e = InterleavedBlock::encode_paper(&block);
        e.corrupt_chunk(10, 0b1111);
        e.corrupt_chunk(99, 0b1111);
        let d = e.decode();
        assert!(d.detected_double_error());
        assert_eq!(
            d.outcomes.iter().filter(|o| **o == DecodeOutcome::DoubleError).count(),
            4
        );
    }

    #[test]
    fn two_chunk_corruptions_disjoint_segments_still_corrected() {
        // If the two bad chunks hit different segments, each segment
        // sees one error and everything corrects.
        let block = sample_block();
        let mut e = InterleavedBlock::encode_paper(&block);
        e.corrupt_chunk(10, 0b0011); // segments 0,1
        e.corrupt_chunk(99, 0b1100); // segments 2,3
        let d = e.decode();
        assert!(d.usable());
        assert_eq!(d.corrections(), 4);
        assert_eq!(d.block, block);
    }

    #[test]
    fn parity_chunk_corruption_also_corrected() {
        let block = sample_block();
        let mut e = InterleavedBlock::encode_paper(&block);
        let parity_index = e.data_chunk_count() + 3;
        e.corrupt_chunk(parity_index, 0b1111);
        let d = e.decode();
        assert!(d.usable());
        assert_eq!(d.block, block);
    }

    #[test]
    fn alternative_geometry_72_64() {
        // 64-byte block as eight 64-bit segments under (72,64) — the
        // other Fig. 28/29 configuration.
        let block = sample_block();
        let e = InterleavedBlock::encode(&block, 8, SecdedCode::c72_64());
        assert_eq!(e.data_chunk_count(), 64);
        assert_eq!(e.parity_chunk_count(), 8);
        let mut bad = e.clone();
        bad.corrupt_chunk(20, 0xFF);
        let d = bad.decode();
        assert!(d.usable());
        assert_eq!(d.block, block);
    }

    #[test]
    fn as_chunks_is_transfer_ready() {
        let e = InterleavedBlock::encode_paper(&sample_block());
        let chunks = e.as_chunks();
        assert_eq!(chunks.size().bits(), 4);
        assert_eq!(chunks.len(), 137);
    }

    #[test]
    #[should_panic(expected = "does not split")]
    fn wrong_block_size_rejected() {
        let _ = InterleavedBlock::encode(&Block::zeroed(60), 4, SecdedCode::c137_128());
    }

    #[test]
    fn display_mentions_geometry() {
        let e = InterleavedBlock::encode_paper(&sample_block());
        let s = format!("{e}");
        assert!(s.contains("(137,128)"));
        assert!(s.contains("128 data"));
    }
}
