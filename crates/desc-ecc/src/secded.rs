//! Generic SECDED Hamming construction (extended Hamming code).
//!
//! The classic layout: codeword positions are numbered from 1; parity
//! bits sit at the power-of-two positions and cover every position
//! whose index has the corresponding bit set; an overall parity bit
//! (position 0) extends single-error correction to double-error
//! detection. The paper uses the (72,64) and (137,128) instances
//! (Slayman \[22\]).

use std::fmt;

/// A SECDED (extended Hamming) code over `data_bits` data bits.
///
/// # Examples
///
/// ```
/// use desc_ecc::SecdedCode;
///
/// let code = SecdedCode::c72_64();
/// assert_eq!(code.data_bits(), 64);
/// assert_eq!(code.codeword_bits(), 72);
///
/// let data = [0xDEu8, 0xAD, 0xBE, 0xEF, 0x01, 0x02, 0x03, 0x04];
/// let mut cw = code.encode(&data);
/// cw[17] = !cw[17]; // single-bit upset
/// let decoded = code.decode(&mut cw);
/// assert!(decoded.is_corrected());
/// assert_eq!(code.extract_data(&cw), data);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SecdedCode {
    data_bits: usize,
    hamming_parity_bits: usize,
}

/// Result of decoding a (possibly corrupted) codeword.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeOutcome {
    /// The codeword was consistent.
    Clean,
    /// A single-bit error was found and corrected in place; the payload
    /// is the corrupted codeword index.
    Corrected(usize),
    /// Two bit errors were detected; the data is not trustworthy.
    DoubleError,
}

impl DecodeOutcome {
    /// True for [`DecodeOutcome::Clean`] and
    /// [`DecodeOutcome::Corrected`] — the data is usable.
    #[must_use]
    pub fn is_usable(&self) -> bool {
        !matches!(self, DecodeOutcome::DoubleError)
    }

    /// True only for [`DecodeOutcome::Corrected`].
    #[must_use]
    pub fn is_corrected(&self) -> bool {
        matches!(self, DecodeOutcome::Corrected(_))
    }
}

impl fmt::Display for DecodeOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeOutcome::Clean => write!(f, "clean"),
            DecodeOutcome::Corrected(i) => write!(f, "corrected bit {i}"),
            DecodeOutcome::DoubleError => write!(f, "double error detected"),
        }
    }
}

impl SecdedCode {
    /// Builds a SECDED code for `data_bits` data bits.
    ///
    /// # Panics
    ///
    /// Panics if `data_bits` is zero.
    #[must_use]
    pub fn new(data_bits: usize) -> Self {
        assert!(data_bits > 0, "a code needs at least one data bit");
        let mut r = 1usize;
        while (1usize << r) < data_bits + r + 1 {
            r += 1;
        }
        Self { data_bits, hamming_parity_bits: r }
    }

    /// The paper's (72,64) Hamming code protecting 64-bit words.
    #[must_use]
    pub fn c72_64() -> Self {
        let c = Self::new(64);
        debug_assert_eq!(c.codeword_bits(), 72);
        c
    }

    /// The paper's (137,128) Hamming code protecting 128-bit segments.
    #[must_use]
    pub fn c137_128() -> Self {
        let c = Self::new(128);
        debug_assert_eq!(c.codeword_bits(), 137);
        c
    }

    /// Number of protected data bits.
    #[must_use]
    pub fn data_bits(&self) -> usize {
        self.data_bits
    }

    /// Number of parity bits including the overall (DED) parity.
    #[must_use]
    pub fn parity_bits(&self) -> usize {
        self.hamming_parity_bits + 1
    }

    /// Total codeword length in bits.
    #[must_use]
    pub fn codeword_bits(&self) -> usize {
        self.data_bits + self.parity_bits()
    }

    /// Hamming codeword length excluding the overall parity
    /// (positions 1..=n in the classic numbering).
    fn hamming_len(&self) -> usize {
        self.data_bits + self.hamming_parity_bits
    }

    /// Encodes `data` (little-endian bit order, `data_bits` bits) into
    /// a codeword laid out as `[overall parity, position 1, position 2,
    /// …]`.
    ///
    /// # Panics
    ///
    /// Panics if `data` holds fewer than `data_bits` bits.
    #[must_use]
    #[allow(clippy::needless_range_loop)] // Hamming positions are semantic indices
    pub fn encode(&self, data: &[u8]) -> Vec<bool> {
        assert!(
            data.len() * 8 >= self.data_bits,
            "need {} data bits, got {}",
            self.data_bits,
            data.len() * 8
        );
        let bit = |i: usize| (data[i / 8] >> (i % 8)) & 1 == 1;

        let n = self.hamming_len();
        let mut word = vec![false; n + 1]; // index 0 = overall parity
        // Place data bits at non-power-of-two positions.
        let mut di = 0usize;
        for pos in 1..=n {
            if !pos.is_power_of_two() {
                word[pos] = bit(di);
                di += 1;
            }
        }
        debug_assert_eq!(di, self.data_bits);
        // Compute Hamming parity bits (even parity per coverage group).
        for j in 0..self.hamming_parity_bits {
            let p = 1usize << j;
            let parity = (1..=n)
                .filter(|&pos| pos != p && pos & p != 0 && word[pos])
                .count()
                % 2
                == 1;
            word[p] = parity;
        }
        // Overall parity over everything else (even total parity).
        word[0] = word[1..].iter().filter(|&&b| b).count() % 2 == 1;
        word
    }

    /// Decodes `codeword` in place, correcting a single-bit error if
    /// present.
    ///
    /// # Panics
    ///
    /// Panics if `codeword` has the wrong length.
    pub fn decode(&self, codeword: &mut [bool]) -> DecodeOutcome {
        assert_eq!(
            codeword.len(),
            self.codeword_bits(),
            "codeword length mismatch for ({},{})",
            self.codeword_bits(),
            self.data_bits
        );
        let n = self.hamming_len();
        let mut syndrome = 0usize;
        for j in 0..self.hamming_parity_bits {
            let p = 1usize << j;
            let parity = (1..=n).filter(|&pos| pos & p != 0 && codeword[pos]).count() % 2 == 1;
            if parity {
                syndrome |= p;
            }
        }
        let overall = codeword.iter().filter(|&&b| b).count() % 2 == 1;

        let outcome = match (syndrome, overall) {
            (0, false) => DecodeOutcome::Clean,
            (0, true) => {
                // The overall parity bit itself flipped.
                codeword[0] = !codeword[0];
                DecodeOutcome::Corrected(0)
            }
            (s, true) if s <= n => {
                codeword[s] = !codeword[s];
                DecodeOutcome::Corrected(s)
            }
            // Non-zero syndrome with clean overall parity, or a
            // syndrome pointing outside the codeword: double error.
            _ => DecodeOutcome::DoubleError,
        };
        if desc_telemetry::enabled() {
            desc_telemetry::counter!("ecc.secded.decodes").incr();
            match outcome {
                DecodeOutcome::Clean => desc_telemetry::counter!("ecc.secded.clean").incr(),
                DecodeOutcome::Corrected(_) => {
                    desc_telemetry::counter!("ecc.secded.corrected").incr();
                }
                DecodeOutcome::DoubleError => {
                    desc_telemetry::counter!("ecc.secded.uncorrectable").incr();
                }
            }
        }
        outcome
    }

    /// Extracts the data bits from a (corrected) codeword, packed
    /// little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `codeword` has the wrong length.
    #[must_use]
    #[allow(clippy::needless_range_loop)] // Hamming positions are semantic indices
    pub fn extract_data(&self, codeword: &[bool]) -> Vec<u8> {
        assert_eq!(codeword.len(), self.codeword_bits(), "codeword length mismatch");
        let mut data = vec![0u8; self.data_bits.div_ceil(8)];
        let mut di = 0usize;
        for pos in 1..=self.hamming_len() {
            if !pos.is_power_of_two() {
                if codeword[pos] {
                    data[di / 8] |= 1 << (di % 8);
                }
                di += 1;
            }
        }
        data
    }
}

impl fmt::Display for SecdedCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{}) SECDED", self.codeword_bits(), self.data_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_code_dimensions() {
        let c72 = SecdedCode::c72_64();
        assert_eq!((c72.codeword_bits(), c72.data_bits(), c72.parity_bits()), (72, 64, 8));
        let c137 = SecdedCode::c137_128();
        assert_eq!((c137.codeword_bits(), c137.data_bits(), c137.parity_bits()), (137, 128, 9));
    }

    #[test]
    fn clean_roundtrip() {
        let code = SecdedCode::c72_64();
        let data = [0x12, 0x34, 0x56, 0x78, 0x9A, 0xBC, 0xDE, 0xF0];
        let mut cw = code.encode(&data);
        assert_eq!(code.decode(&mut cw), DecodeOutcome::Clean);
        assert_eq!(code.extract_data(&cw), data);
    }

    #[test]
    fn every_single_bit_error_corrected_72_64() {
        let code = SecdedCode::c72_64();
        let data = [0xA5, 0x00, 0xFF, 0x3C, 0x81, 0x7E, 0x55, 0xAA];
        let clean = code.encode(&data);
        for i in 0..code.codeword_bits() {
            let mut cw = clean.clone();
            cw[i] = !cw[i];
            let outcome = code.decode(&mut cw);
            assert_eq!(outcome, DecodeOutcome::Corrected(i), "bit {i}");
            assert_eq!(code.extract_data(&cw), data, "bit {i} data");
        }
    }

    #[test]
    fn every_single_bit_error_corrected_137_128() {
        let code = SecdedCode::c137_128();
        let data: Vec<u8> = (0..16).map(|i| (i * 17 + 3) as u8).collect();
        let clean = code.encode(&data);
        for i in 0..code.codeword_bits() {
            let mut cw = clean.clone();
            cw[i] = !cw[i];
            assert!(code.decode(&mut cw).is_corrected(), "bit {i}");
            assert_eq!(code.extract_data(&cw), data, "bit {i} data");
        }
    }

    #[test]
    fn all_double_bit_errors_detected_small_code() {
        // Exhaustive over a small instance: every 2-bit error pattern
        // must report DoubleError (never miscorrect silently into
        // Clean).
        let code = SecdedCode::new(8);
        let data = [0b1100_0101u8];
        let clean = code.encode(&data);
        let n = code.codeword_bits();
        for i in 0..n {
            for j in (i + 1)..n {
                let mut cw = clean.clone();
                cw[i] = !cw[i];
                cw[j] = !cw[j];
                assert_eq!(
                    code.decode(&mut cw),
                    DecodeOutcome::DoubleError,
                    "bits {i},{j}"
                );
            }
        }
    }

    #[test]
    fn double_bit_errors_detected_72_64_sampled() {
        let code = SecdedCode::c72_64();
        let data = [0x0F, 0xF0, 0x55, 0xAA, 0x00, 0xFF, 0x42, 0x24];
        let clean = code.encode(&data);
        for (i, j) in [(0, 1), (0, 71), (3, 7), (12, 40), (64, 70), (33, 34)] {
            let mut cw = clean.clone();
            cw[i] = !cw[i];
            cw[j] = !cw[j];
            assert_eq!(code.decode(&mut cw), DecodeOutcome::DoubleError, "bits {i},{j}");
        }
    }

    #[test]
    fn all_zero_and_all_one_data_encode() {
        let code = SecdedCode::c137_128();
        for byte in [0x00u8, 0xFF] {
            let data = vec![byte; 16];
            let mut cw = code.encode(&data);
            assert_eq!(code.decode(&mut cw), DecodeOutcome::Clean);
            assert_eq!(code.extract_data(&cw), data);
        }
    }

    #[test]
    fn outcome_helpers() {
        assert!(DecodeOutcome::Clean.is_usable());
        assert!(DecodeOutcome::Corrected(3).is_usable());
        assert!(DecodeOutcome::Corrected(3).is_corrected());
        assert!(!DecodeOutcome::DoubleError.is_usable());
        assert!(format!("{}", DecodeOutcome::Corrected(5)).contains('5'));
    }

    #[test]
    fn code_display() {
        assert_eq!(format!("{}", SecdedCode::c72_64()), "(72,64) SECDED");
        assert_eq!(format!("{}", SecdedCode::c137_128()), "(137,128) SECDED");
    }

    #[test]
    fn generic_sizes_follow_hamming_bound() {
        for (k, expected_total) in [(4, 8), (8, 13), (16, 22), (32, 39), (64, 72), (128, 137)] {
            let c = SecdedCode::new(k);
            assert_eq!(c.codeword_bits(), expected_total, "k={k}");
        }
    }
}
