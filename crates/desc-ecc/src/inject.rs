//! Fault injection for ECC experiments (paper Figs. 28/29 context).
//!
//! Deterministic, seedable error generators at two granularities:
//! single bits (the conventional H-tree fault model under binary
//! encoding) and whole chunks (the DESC fault model — one mistimed
//! toggle garbles a chunk).

use desc_core::rng::Rng64;

/// A deterministic fault injector.
///
/// # Examples
///
/// ```
/// use desc_ecc::inject::FaultInjector;
///
/// let mut inj = FaultInjector::new(7);
/// let (chunk, mask) = inj.chunk_fault(137, 4);
/// assert!(chunk < 137);
/// assert!(mask != 0 && mask < 16);
/// ```
#[derive(Clone, Debug)]
pub struct FaultInjector {
    rng: Rng64,
}

impl FaultInjector {
    /// Creates an injector from a seed (same seed → same fault
    /// sequence).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { rng: Rng64::seed_from_u64(seed) }
    }

    /// Picks a random bit index within a codeword of `bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero.
    pub fn bit_fault(&mut self, bits: usize) -> usize {
        assert!(bits > 0, "codeword must have at least one bit");
        if desc_telemetry::enabled() {
            desc_telemetry::counter!("ecc.inject.bit_faults").incr();
        }
        self.rng.gen_range(0..bits)
    }

    /// Picks two *distinct* bit indices within a codeword.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 2`.
    pub fn double_bit_fault(&mut self, bits: usize) -> (usize, usize) {
        assert!(bits >= 2, "need at least two bits for a double fault");
        if desc_telemetry::enabled() {
            desc_telemetry::counter!("ecc.inject.bit_faults").add(2);
        }
        let a = self.rng.gen_range(0..bits);
        let mut b = self.rng.gen_range(0..bits - 1);
        if b >= a {
            b += 1;
        }
        (a, b)
    }

    /// Picks a chunk index and a non-zero corruption mask of up to
    /// `chunk_bits` bits — the DESC-granularity fault.
    ///
    /// # Panics
    ///
    /// Panics if `chunks` is zero or `chunk_bits` is zero or above 16.
    pub fn chunk_fault(&mut self, chunks: usize, chunk_bits: usize) -> (usize, u16) {
        assert!(chunks > 0, "need at least one chunk");
        assert!((1..=16).contains(&chunk_bits), "chunk width out of range");
        if desc_telemetry::enabled() {
            desc_telemetry::counter!("ecc.inject.chunk_faults").incr();
        }
        let index = self.rng.gen_range(0..chunks);
        let mask = self.rng.gen_range(1..(1u32 << chunk_bits)) as u16;
        (index, mask)
    }

    /// Picks two distinct chunk faults.
    ///
    /// # Panics
    ///
    /// Panics if `chunks < 2`.
    pub fn double_chunk_fault(
        &mut self,
        chunks: usize,
        chunk_bits: usize,
    ) -> ((usize, u16), (usize, u16)) {
        assert!(chunks >= 2, "need at least two chunks for a double fault");
        // The second fault is drawn inline below; count it here (the
        // first is counted by `chunk_fault`).
        if desc_telemetry::enabled() {
            desc_telemetry::counter!("ecc.inject.chunk_faults").incr();
        }
        let (i, m1) = self.chunk_fault(chunks, chunk_bits);
        let mut j = self.rng.gen_range(0..chunks - 1);
        if j >= i {
            j += 1;
        }
        let m2 = self.rng.gen_range(1..(1u32 << chunk_bits)) as u16;
        ((i, m1), (j, m2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interleave::InterleavedBlock;
    use desc_core::Block;

    #[test]
    fn same_seed_same_faults() {
        let mut a = FaultInjector::new(99);
        let mut b = FaultInjector::new(99);
        for _ in 0..32 {
            assert_eq!(a.chunk_fault(137, 4), b.chunk_fault(137, 4));
            assert_eq!(a.bit_fault(72), b.bit_fault(72));
        }
    }

    #[test]
    fn double_faults_are_distinct() {
        let mut inj = FaultInjector::new(1);
        for _ in 0..200 {
            let (a, b) = inj.double_bit_fault(72);
            assert_ne!(a, b);
            let ((i, _), (j, _)) = inj.double_chunk_fault(137, 4);
            assert_ne!(i, j);
        }
    }

    #[test]
    fn masks_are_nonzero_and_in_range() {
        let mut inj = FaultInjector::new(5);
        for _ in 0..200 {
            let (idx, mask) = inj.chunk_fault(137, 4);
            assert!(idx < 137);
            assert!((1..=15).contains(&mask));
        }
    }

    /// Monte-Carlo version of the paper's §3.2.3 guarantee: random
    /// single-chunk faults are always corrected.
    #[test]
    fn randomized_single_chunk_faults_always_corrected() {
        let block = Block::from_bytes(&(0..64).map(|i| (i * 29) as u8).collect::<Vec<_>>());
        let clean = InterleavedBlock::encode_paper(&block);
        let mut inj = FaultInjector::new(42);
        for _ in 0..500 {
            let (idx, mask) = inj.chunk_fault(clean.chunks().len(), 4);
            let mut e = clean.clone();
            e.corrupt_chunk(idx, mask);
            let d = e.decode();
            assert!(d.usable());
            assert_eq!(d.block, block);
        }
    }

    /// Random double-chunk faults are never silently miscorrected:
    /// either the data survives (faults hit disjoint segments) or a
    /// double error is reported.
    #[test]
    fn randomized_double_chunk_faults_never_silent() {
        let block = Block::from_bytes(&(0..64).map(|i| (i * 31 + 5) as u8).collect::<Vec<_>>());
        let clean = InterleavedBlock::encode_paper(&block);
        let mut inj = FaultInjector::new(43);
        for _ in 0..500 {
            let ((i, m1), (j, m2)) = inj.double_chunk_fault(clean.chunks().len(), 4);
            let mut e = clean.clone();
            e.corrupt_chunk(i, m1);
            e.corrupt_chunk(j, m2);
            let d = e.decode();
            if d.usable() {
                assert_eq!(d.block, block, "usable decode must be correct");
            }
        }
    }
}
