//! A [`TransferScheme`] adapter that extends every block with SECDED
//! parity before handing it to an inner scheme — the transfer-cost
//! side of the paper's Figs. 28/29 (execution time and L2 energy under
//! ECC for various wires-per-segment configurations).
//!
//! The paper's W-S notation means W data wires with the Hamming code
//! applied to S-bit segments; the parity bits travel on extra wires
//! (9 extra for (137,128), §3.2.3).

use crate::secded::SecdedCode;
use desc_core::cost::{TransferCost, WireBudget};
use desc_core::{Block, TransferScheme};

/// Wraps an inner transfer scheme so every block is transferred with
/// its SECDED parity appended.
///
/// # Examples
///
/// ```
/// use desc_core::schemes::BinaryScheme;
/// use desc_core::{Block, TransferScheme};
/// use desc_ecc::{scheme::SecdedScheme, SecdedCode};
///
/// // The paper's 64-64 binary configuration: 64 data + 8 parity wires,
/// // (72,64) per 64-bit word.
/// let mut s = SecdedScheme::new(BinaryScheme::new(72), SecdedCode::c72_64(), 8);
/// let cost = s.transfer(&Block::from_bytes(&[0xA5; 64]));
/// assert_eq!(cost.cycles, 8); // 576 bits over 72 wires
/// ```
#[derive(Clone, Debug)]
pub struct SecdedScheme<S> {
    inner: S,
    code: SecdedCode,
    segments: usize,
}

impl<S: TransferScheme> SecdedScheme<S> {
    /// Wraps `inner` with `code` applied to `segments` equal segments
    /// of each block.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is zero.
    #[must_use]
    pub fn new(inner: S, code: SecdedCode, segments: usize) -> Self {
        assert!(segments > 0, "at least one ECC segment required");
        Self { inner, code, segments }
    }

    /// Extends `block` with its parity bits (zero-padded to a whole
    /// byte).
    ///
    /// # Panics
    ///
    /// Panics if the block does not divide into `segments` segments of
    /// `code.data_bits()` bits.
    #[must_use]
    pub fn extend_with_parity(&self, block: &Block) -> Block {
        assert_eq!(
            block.bit_len(),
            self.segments * self.code.data_bits(),
            "block of {} bits does not split into {} × {}-bit ECC segments",
            block.bit_len(),
            self.segments,
            self.code.data_bits()
        );
        let parity_per_segment = self.code.parity_bits();
        let parity_bits = self.segments * parity_per_segment;
        let total_bytes = block.byte_len() + parity_bits.div_ceil(8);
        let mut extended = Block::zeroed(total_bytes);
        for i in 0..block.bit_len() {
            extended.set_bit(i, block.bit(i));
        }
        let seg_bytes = self.code.data_bits().div_ceil(8);
        for s in 0..self.segments {
            let mut data = vec![0u8; seg_bytes];
            for b in 0..self.code.data_bits() {
                if block.bit(s * self.code.data_bits() + b) {
                    data[b / 8] |= 1 << (b % 8);
                }
            }
            let codeword = self.code.encode(&data);
            // Parity = positions 0 (overall) and the powers of two.
            let n = self.code.codeword_bits() - 1;
            let parity_positions = (1..=n).filter(|p| p.is_power_of_two()).chain([0usize]);
            for (k, pos) in parity_positions.enumerate() {
                let bit_index = block.bit_len() + s * parity_per_segment + k;
                extended.set_bit(bit_index, codeword[pos]);
            }
        }
        extended
    }
}

impl<S: TransferScheme + Clone + 'static> TransferScheme for SecdedScheme<S> {
    fn name(&self) -> &'static str {
        // Static names keep the trait simple; the wires()/cost tell the
        // rest. Distinguish DESC for the simulator's interface-delay
        // logic by delegating to the inner scheme's name.
        self.inner.name()
    }

    fn wires(&self) -> WireBudget {
        self.inner.wires()
    }

    fn transfer(&mut self, block: &Block) -> TransferCost {
        let extended = self.extend_with_parity(block);
        if desc_telemetry::enabled() {
            desc_telemetry::counter!("ecc.scheme.blocks").incr();
            desc_telemetry::counter!("ecc.scheme.parity_bits")
                .add((self.segments * self.code.parity_bits()) as u64);
        }
        self.inner.transfer(&extended)
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn clone_box(&self) -> Box<dyn TransferScheme> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desc_core::schemes::{BinaryScheme, DescScheme, SkipMode};
    use desc_core::ChunkSize;

    fn sample() -> Block {
        Block::from_bytes(&(0..64).map(|i| (i * 37 + 1) as u8).collect::<Vec<_>>())
    }

    #[test]
    fn extension_sizes_match_paper_codes() {
        let s72 = SecdedScheme::new(BinaryScheme::new(72), SecdedCode::c72_64(), 8);
        assert_eq!(s72.extend_with_parity(&sample()).byte_len(), 72); // 512+64 bits

        let s137 = SecdedScheme::new(BinaryScheme::new(137), SecdedCode::c137_128(), 4);
        assert_eq!(s137.extend_with_parity(&sample()).byte_len(), 69); // 512+36 → padded
    }

    #[test]
    fn parity_bits_are_really_there() {
        // An all-zero block has all-zero parity; a dense block does not.
        let s = SecdedScheme::new(BinaryScheme::new(72), SecdedCode::c72_64(), 8);
        let zero_ext = s.extend_with_parity(&Block::zeroed(64));
        assert!(zero_ext.is_null());
        let dense_ext = s.extend_with_parity(&Block::from_bytes(&[0x7F; 64]));
        let parity_tail = &dense_ext.as_bytes()[64..];
        assert!(parity_tail.iter().any(|&b| b != 0), "dense data must set parity bits");
    }

    #[test]
    fn binary_ecc_cost_matches_wire_math() {
        let mut s = SecdedScheme::new(BinaryScheme::new(72), SecdedCode::c72_64(), 8);
        assert_eq!(s.transfer(&sample()).cycles, 8); // 576/72
        let mut wide = SecdedScheme::new(BinaryScheme::new(137), SecdedCode::c137_128(), 4);
        assert_eq!(wide.transfer(&sample()).cycles, 5); // ceil(552/137)
    }

    #[test]
    fn desc_ecc_single_round_with_enough_wires() {
        // 128-64 DESC: 144 chunks over 144 wires, one round.
        let mut s = SecdedScheme::new(
            DescScheme::new(144, ChunkSize::new(4).expect("valid"), SkipMode::Zero)
                .without_sync_strobe(),
            SecdedCode::c72_64(),
            8,
        );
        let cost = s.transfer(&sample());
        assert!(cost.cycles <= 15, "one window expected, got {} cycles", cost.cycles);
        // Data strobes ≤ 144 chunks.
        assert!(cost.data_transitions <= 144);
    }

    #[test]
    fn ecc_transfer_costs_more_than_unprotected() {
        let block = sample();
        let mut plain = DescScheme::new(128, ChunkSize::new(4).expect("valid"), SkipMode::Zero);
        let mut ecc = SecdedScheme::new(
            DescScheme::new(144, ChunkSize::new(4).expect("valid"), SkipMode::Zero),
            SecdedCode::c72_64(),
            8,
        );
        assert!(
            ecc.transfer(&block).data_transitions >= plain.transfer(&block).data_transitions
        );
    }

    #[test]
    fn reset_propagates() {
        let block = sample();
        let mut s = SecdedScheme::new(BinaryScheme::new(72), SecdedCode::c72_64(), 8);
        let first = s.transfer(&block);
        s.reset();
        assert_eq!(s.transfer(&block), first);
    }
}
