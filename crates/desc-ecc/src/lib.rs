//! # desc-ecc
//!
//! SECDED (single-error-correction, double-error-detection) Hamming
//! codes and the DESC-compatible interleaved parity layout of the
//! paper's §3.2.3 / Fig. 9.
//!
//! DESC transfers a 4-bit chunk with a *single* wire transition, so one
//! H-tree error can corrupt up to four bits at once. The paper keeps
//! conventional SECDED usable by interleaving: a 512-bit cache block is
//! split into four 128-bit segments, each protected by a (137,128)
//! Hamming code, and chunks are laid out so that every chunk carries at
//! most one bit *per segment*. One corrupted chunk therefore injects at
//! most one error into each segment — which SECDED corrects — and two
//! corrupted chunks inject at most two per segment — which SECDED
//! detects.
//!
//! * [`secded`] — generic SECDED construction plus the paper's
//!   (72,64) and (137,128) instances.
//! * [`interleave`] — the Fig. 9 chunk layout and its guarantees.
//! * [`inject`] — fault-injection helpers used by tests and the
//!   Fig. 28/29 experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod inject;
pub mod interleave;
pub mod scheme;
pub mod secded;

pub use interleave::InterleavedBlock;
pub use secded::{DecodeOutcome, SecdedCode};
