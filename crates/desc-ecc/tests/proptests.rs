//! Property-based tests for the SECDED codes and the interleaved
//! layout.

// Gated: compiled only with `--features proptest`, which requires
// network access to fetch the `proptest` crate (see Cargo.toml).
#![cfg(feature = "proptest")]

use desc_core::Block;
use desc_ecc::{DecodeOutcome, InterleavedBlock, SecdedCode};
use proptest::prelude::*;

fn arb_block64() -> impl Strategy<Value = Block> {
    prop::collection::vec(any::<u8>(), 64).prop_map(|b| Block::from_bytes(&b))
}

proptest! {
    /// Clean encode/decode round-trips for arbitrary data under both
    /// paper codes.
    #[test]
    fn secded_roundtrip(data in prop::collection::vec(any::<u8>(), 16)) {
        for code in [SecdedCode::c72_64(), SecdedCode::c137_128()] {
            let needed = code.data_bits() / 8;
            let mut cw = code.encode(&data[..needed]);
            prop_assert_eq!(code.decode(&mut cw), DecodeOutcome::Clean);
            prop_assert_eq!(code.extract_data(&cw), &data[..needed]);
        }
    }

    /// Every single-bit flip is corrected back to the original data.
    #[test]
    fn secded_corrects_any_single_flip(
        data in prop::collection::vec(any::<u8>(), 16),
        flip in any::<prop::sample::Index>(),
    ) {
        let code = SecdedCode::c137_128();
        let clean = code.encode(&data);
        let i = flip.index(code.codeword_bits());
        let mut cw = clean;
        cw[i] = !cw[i];
        prop_assert!(code.decode(&mut cw).is_corrected());
        prop_assert_eq!(code.extract_data(&cw), data);
    }

    /// Every double-bit flip is reported, never silently accepted.
    #[test]
    fn secded_detects_any_double_flip(
        data in prop::collection::vec(any::<u8>(), 8),
        a in any::<prop::sample::Index>(),
        b in any::<prop::sample::Index>(),
    ) {
        let code = SecdedCode::c72_64();
        let clean = code.encode(&data);
        let i = a.index(code.codeword_bits());
        let mut j = b.index(code.codeword_bits() - 1);
        if j >= i { j += 1; }
        let mut cw = clean;
        cw[i] = !cw[i];
        cw[j] = !cw[j];
        prop_assert_eq!(code.decode(&mut cw), DecodeOutcome::DoubleError);
    }

    /// Interleaved layout round-trips and survives any single-chunk
    /// corruption with any non-zero mask.
    #[test]
    fn interleave_corrects_any_chunk_fault(
        block in arb_block64(),
        which in any::<prop::sample::Index>(),
        mask in 1u16..16,
    ) {
        let mut e = InterleavedBlock::encode_paper(&block);
        let idx = which.index(e.chunks().len());
        e.corrupt_chunk(idx, mask);
        let d = e.decode();
        prop_assert!(d.usable());
        prop_assert_eq!(d.block, block);
    }

    /// Two chunk faults are either corrected correctly (disjoint
    /// segments) or flagged — never a silent wrong answer.
    #[test]
    fn interleave_never_silently_wrong_on_double_faults(
        block in arb_block64(),
        a in any::<prop::sample::Index>(),
        b in any::<prop::sample::Index>(),
        m1 in 1u16..16,
        m2 in 1u16..16,
    ) {
        let mut e = InterleavedBlock::encode_paper(&block);
        let n = e.chunks().len();
        let i = a.index(n);
        let mut j = b.index(n - 1);
        if j >= i { j += 1; }
        e.corrupt_chunk(i, m1);
        e.corrupt_chunk(j, m2);
        let d = e.decode();
        if d.usable() {
            prop_assert_eq!(d.block, block);
        }
    }
}
