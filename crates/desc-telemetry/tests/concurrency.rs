//! Concurrency and determinism guarantees of the metric registry.

use desc_telemetry::{Registry, HISTOGRAM_BUCKETS};

#[test]
fn concurrent_counter_increments_are_lossless() {
    let registry = Registry::new();
    let counter = registry.counter("test.concurrent");
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for _ in 0..PER_THREAD {
                    counter.incr();
                }
            });
        }
    });
    assert_eq!(counter.get(), THREADS * PER_THREAD);
}

#[test]
fn concurrent_histogram_records_are_lossless() {
    let registry = Registry::new();
    let hist = registry.histogram("test.hist");
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 5_000;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let hist = &hist;
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    hist.record(t * PER_THREAD + i);
                }
            });
        }
    });
    assert_eq!(hist.count(), THREADS * PER_THREAD);
    let total: u64 = hist.buckets().iter().sum();
    assert_eq!(total, THREADS * PER_THREAD);
    // Sum of 0..N-1 regardless of interleaving.
    let n = THREADS * PER_THREAD;
    assert_eq!(hist.sum(), n * (n - 1) / 2);
}

#[test]
fn gauge_max_is_order_independent() {
    let registry = Registry::new();
    let gauge = registry.gauge("test.max");
    std::thread::scope(|scope| {
        for t in 0..8u64 {
            let gauge = &gauge;
            scope.spawn(move || {
                for v in 0..1000u64 {
                    gauge.record_max(t * 1000 + v);
                }
            });
        }
    });
    assert_eq!(gauge.get(), 7999);
}

#[test]
fn snapshot_is_name_sorted_and_complete() {
    let registry = Registry::new();
    registry.counter("z.last").incr();
    registry.counter("a.first").incr();
    registry.histogram("m.middle").record(1);
    let snap = registry.snapshot();
    let names = snap.names();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted);
    assert_eq!(names.len(), 3);
    assert!(snap.histogram("m.middle").is_some());
    let buckets_len = HISTOGRAM_BUCKETS;
    assert_eq!(buckets_len, 65);
}
