//! Pins `docs/REPORT_SCHEMA.md` to the code: the document's "Key
//! index" block must list exactly the key paths a representative
//! `desc-run-report/v1` report emits. If either side changes alone,
//! this test fails — the schema document cannot drift silently.

use desc_telemetry::{
    CacheReport, Json, PoolUtilization, RegionUtilization, Registry, Report, ReportMeta,
    ServeReport, Span, WorkerUtilization,
};
use std::collections::BTreeSet;

/// Extracts the fenced block following the "## Key index" heading.
fn documented_paths(doc: &str) -> BTreeSet<String> {
    let index = doc.split("## Key index").nth(1).expect("doc has a Key index section");
    let block = index.split("```").nth(1).expect("Key index has a fenced block");
    block
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && *l != "text")
        .map(|l| l.trim_end_matches('?').to_owned())
        .collect()
}

/// Flattens an emitted report into the doc's path notation:
/// `metrics.<actual name>` collapses to `metrics.<name>`,
/// `pool_utilization.regions.<actual label>` to
/// `pool_utilization.regions.<label>`, array elements to `[]`.
fn emitted_paths(report: &Json) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let Json::Obj(top) = report else { panic!("report is an object") };
    for (key, value) in top {
        match key.as_str() {
            "meta" => {
                let Json::Obj(meta) = value else { panic!("meta is an object") };
                for (k, _) in meta {
                    out.insert(format!("meta.{k}"));
                }
            }
            "metrics" => {
                let Json::Obj(metrics) = value else { panic!("metrics is an object") };
                for (_, metric) in metrics {
                    let Json::Obj(fields) = metric else { panic!("metric is an object") };
                    for (k, _) in fields {
                        out.insert(format!("metrics.<name>.{k}"));
                    }
                }
            }
            "pool_utilization" => {
                let Json::Obj(pool) = value else { panic!("pool_utilization is an object") };
                for (k, v) in pool {
                    match k.as_str() {
                        "workers" => {
                            for w in v.as_arr().expect("workers is an array") {
                                let Json::Obj(fields) = w else { panic!("worker is an object") };
                                for (wk, _) in fields {
                                    out.insert(format!("pool_utilization.workers[].{wk}"));
                                }
                            }
                        }
                        "regions" => {
                            let Json::Obj(regions) = v else { panic!("regions is an object") };
                            for (_, region) in regions {
                                let Json::Obj(fields) = region else {
                                    panic!("region is an object")
                                };
                                for (rk, _) in fields {
                                    out.insert(format!("pool_utilization.regions.<label>.{rk}"));
                                }
                            }
                        }
                        other => {
                            out.insert(format!("pool_utilization.{other}"));
                        }
                    }
                }
            }
            "cache" => {
                let Json::Obj(cache) = value else { panic!("cache is an object") };
                for (k, _) in cache {
                    out.insert(format!("cache.{k}"));
                }
            }
            "serve" => {
                let Json::Obj(serve) = value else { panic!("serve is an object") };
                for (k, _) in serve {
                    out.insert(format!("serve.{k}"));
                }
            }
            "spans" => {
                for span in value.as_arr().expect("spans is an array") {
                    let Json::Obj(fields) = span else { panic!("span is an object") };
                    for (k, _) in fields {
                        out.insert(format!("spans[].{k}"));
                    }
                }
            }
            other => {
                out.insert(other.to_owned());
            }
        }
    }
    out
}

#[test]
fn schema_document_matches_emitted_report() {
    let doc_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/REPORT_SCHEMA.md");
    let doc = std::fs::read_to_string(doc_path).expect("docs/REPORT_SCHEMA.md exists");
    let documented = documented_paths(&doc);

    // A representative report exercising every metric type, the pool
    // stanza, and a context-carrying span, so every optional (`?`)
    // key is emitted.
    let registry = Registry::new();
    registry.counter("t.count").add(3);
    registry.gauge("t.gauge").set(7);
    registry.histogram("t.lat").record(42);
    let report = Report {
        meta: ReportMeta {
            tool: "schema-doc-test".to_owned(),
            version: "0.0.0".to_owned(),
            seed: 2013,
            scale: "tiny".to_owned(),
            jobs: 2,
            shards: 2,
            experiments: vec!["fig23".to_owned()],
            spans_dropped: 0,
        },
        snapshot: registry.snapshot(),
        pool: Some(PoolUtilization {
            elapsed_us: 1000,
            workers: vec![WorkerUtilization {
                worker: 0,
                name: "main".to_owned(),
                busy_us: 600,
                tasks: 4,
            }],
            regions: vec![RegionUtilization {
                label: "cells".to_owned(),
                tasks: 4,
                queue_wait_us_sum: 12,
                queue_wait_us_max: 8,
                queue_wait_us_buckets: vec![(3, 4)],
                run_us_sum: 580,
                run_us_max: 200,
                run_us_buckets: vec![(7, 3), (8, 1)],
            }],
        }),
        cache: Some(CacheReport {
            dir: Some("/tmp/desc-cache".to_owned()),
            schema_version: 1,
            hits_memory: 1,
            hits_disk: 1,
            misses: 2,
            stores: 2,
            version_mismatches: 0,
            errors: 0,
            evictions: 0,
            inflight_leads: 2,
            inflight_waits: 1,
            inflight_hits: 1,
            inflight_handoffs: 0,
            manifest_cells: 4,
            resumed: false,
        }),
        serve: Some(ServeReport {
            addr: "127.0.0.1:7013".to_owned(),
            workers: 2,
            queue_capacity: 8,
            connections: 5,
            accepted: 4,
            completed: 4,
            rejected_busy: 1,
            rejected_malformed: 0,
            timed_out: 0,
            failed: 0,
            dedup_cells: 1,
            dedup_requests: 1,
            active: 0,
            draining: false,
        }),
        spans: vec![Span {
            name: "experiment",
            label: "fig23".to_owned(),
            ctx: "fig23".to_owned(),
            worker: 0,
            start_us: 1,
            duration_us: 2,
        }],
    };
    let emitted = emitted_paths(&report.to_json());

    assert_eq!(
        documented, emitted,
        "docs/REPORT_SCHEMA.md Key index disagrees with Report::to_json \
         (left: documented, right: emitted)"
    );
    assert!(
        doc.contains("desc-run-report/v1"),
        "schema document must name the schema version"
    );
}
