//! Metric primitives: atomic counters, gauges, and log2-bucketed
//! histograms, plus a non-atomic [`LocalHistogram`] for hot loops.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets: bucket 0 holds the value 0, bucket
/// `b` (1..=64) holds values whose bit length is `b`, i.e. the range
/// `[2^(b-1), 2^b)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Bucket index for a recorded value: 0 for 0, otherwise the bit
/// length of the value (1..=64). `u64::MAX` lands in bucket 64.
#[inline]
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Lower bound of a bucket (inclusive). Bucket 0 covers exactly 0.
#[must_use]
pub fn bucket_floor(bucket: usize) -> u64 {
    match bucket {
        0 => 0,
        b => 1u64 << (b - 1),
    }
}

/// A monotonically increasing event count. All operations are
/// order-independent (wrapping add), so totals are identical no
/// matter how work is split across threads.
///
/// Registry-owned counters carry their registration name so updates
/// can be mirrored into an installed [`crate::capture::CaptureSink`];
/// standalone counters (`Counter::new`) have an empty name and are
/// never mirrored.
#[derive(Debug, Default)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// A fresh zeroed counter.
    #[must_use]
    pub const fn new() -> Self {
        Self::named("")
    }

    /// A fresh zeroed counter that mirrors updates under `name`.
    #[must_use]
    pub(crate) const fn named(name: &'static str) -> Self {
        Self { name, value: AtomicU64::new(0) }
    }

    /// Adds `n` to the counter.
    ///
    /// Mirrored into the thread's capture sink even when `n` is 0, so
    /// a captured delta registers exactly the metric names the direct
    /// run would.
    #[inline]
    pub fn add(&self, n: u64) {
        self.add_raw(n);
        if !self.name.is_empty() {
            crate::capture::mirror_counter(self.name, n);
        }
    }

    /// Adds `n` without mirroring into any capture sink (replay path).
    #[inline]
    pub(crate) fn add_raw(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-value / running-maximum metric. Prefer [`Gauge::record_max`]
/// in parallel code: `max` is order-independent, `set` is last-writer-
/// wins and only deterministic in serial sections.
#[derive(Debug, Default)]
pub struct Gauge {
    name: &'static str,
    value: AtomicU64,
}

impl Gauge {
    /// A fresh zeroed gauge.
    #[must_use]
    pub const fn new() -> Self {
        Self::named("")
    }

    /// A fresh zeroed gauge that mirrors updates under `name`.
    #[must_use]
    pub(crate) const fn named(name: &'static str) -> Self {
        Self { name, value: AtomicU64::new(0) }
    }

    /// Stores `v` (last writer wins).
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
        if !self.name.is_empty() {
            crate::capture::mirror_gauge_set(self.name, v);
        }
    }

    /// Raises the gauge to `v` if `v` is larger (order-independent).
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.max_raw(v);
        if !self.name.is_empty() {
            crate::capture::mirror_gauge_max(self.name, v);
        }
    }

    /// Raises the gauge without mirroring into any capture sink
    /// (replay path).
    #[inline]
    pub(crate) fn max_raw(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets the gauge to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A log2-bucketed histogram of `u64` samples.
///
/// 65 buckets: bucket 0 is exactly 0; bucket `b` covers
/// `[2^(b-1), 2^b)`. Count, sum, and per-bucket totals are all
/// relaxed atomic adds, so merged results are independent of thread
/// interleaving.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::named("")
    }

    /// A fresh empty histogram that mirrors updates under `name`.
    #[must_use]
    pub(crate) fn named(name: &'static str) -> Self {
        Self {
            name,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        if !self.name.is_empty() {
            crate::capture::mirror_histogram_sample(self.name, value);
        }
    }

    /// Adds pre-aggregated parts without mirroring into any capture
    /// sink (replay path). A zero-count add is a no-op for the stored
    /// totals; the histogram itself is registered by the lookup that
    /// produced `self`.
    pub(crate) fn add_parts(&self, count: u64, sum: u64, buckets: &[u64; HISTOGRAM_BUCKETS]) {
        if count == 0 {
            return;
        }
        self.count.fetch_add(count, Ordering::Relaxed);
        self.sum.fetch_add(sum, Ordering::Relaxed);
        for (slot, &n) in self.buckets.iter().zip(buckets) {
            if n != 0 {
                slot.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Total number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Wrapping sum of all samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket sample counts.
    #[must_use]
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Mean sample value, or 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Merges a thread-local histogram into this one.
    ///
    /// Mirrored into the thread's capture sink even when `local` is
    /// empty, so a captured delta registers exactly the metric names
    /// the direct run would.
    pub fn merge(&self, local: &LocalHistogram) {
        if !self.name.is_empty() {
            crate::capture::mirror_histogram_parts(self.name, local.count, local.sum, &local.buckets);
        }
        if local.count == 0 {
            return;
        }
        self.count.fetch_add(local.count, Ordering::Relaxed);
        self.sum.fetch_add(local.sum, Ordering::Relaxed);
        for (i, &n) in local.buckets.iter().enumerate() {
            if n != 0 {
                self.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Clears count, sum, and every bucket.
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// A non-atomic histogram for single-threaded hot loops. Record into
/// this locally and [`Histogram::merge`] once at the end of the run —
/// the inner-loop cost is then a couple of plain adds, not atomics.
#[derive(Debug, Clone)]
pub struct LocalHistogram {
    count: u64,
    sum: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for LocalHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalHistogram {
    /// A fresh empty local histogram.
    #[must_use]
    pub fn new() -> Self {
        Self { count: 0, sum: 0, buckets: [0; HISTOGRAM_BUCKETS] }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.wrapping_add(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// Number of samples recorded locally.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Wrapping sum of local samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Flushes this local histogram into `target` and clears it.
    pub fn flush_into(&mut self, target: &Histogram) {
        target.merge(self);
        *self = Self::new();
    }

    /// Merges another local histogram into this one (commutative and
    /// associative, so shard-local histograms can be reduced in any
    /// grouping and flushed once).
    pub fn absorb(&mut self, other: &LocalHistogram) {
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_matches_recording_directly() {
        let mut whole = LocalHistogram::new();
        let mut left = LocalHistogram::new();
        let mut right = LocalHistogram::new();
        for v in [0u64, 1, 5, 9, 1000, u64::MAX] {
            whole.record(v);
            if v % 2 == 0 { left.record(v) } else { right.record(v) }
        }
        let mut merged = LocalHistogram::new();
        merged.absorb(&left);
        merged.absorb(&right);
        assert_eq!(merged.count(), whole.count());
        assert_eq!(merged.sum(), whole.sum());
        assert_eq!(merged.buckets, whole.buckets);
    }

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(1u64 << 63), 64);
        assert_eq!(bucket_index((1u64 << 63) - 1), 63);
        assert_eq!(bucket_floor(0), 0);
        assert_eq!(bucket_floor(1), 1);
        assert_eq!(bucket_floor(64), 1u64 << 63);
    }

    #[test]
    fn histogram_extremes() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        // Sum wraps: 0 + u64::MAX.
        assert_eq!(h.sum(), u64::MAX);
        let b = h.buckets();
        assert_eq!(b[0], 1);
        assert_eq!(b[64], 1);
        assert_eq!(b[1..64].iter().sum::<u64>(), 0);
    }

    #[test]
    fn local_merge_matches_direct() {
        let direct = Histogram::new();
        let merged = Histogram::new();
        let mut local = LocalHistogram::new();
        for v in [0u64, 1, 5, 1000, u64::MAX, 42, 42] {
            direct.record(v);
            local.record(v);
        }
        local.flush_into(&merged);
        assert_eq!(local.count(), 0);
        assert_eq!(direct.count(), merged.count());
        assert_eq!(direct.sum(), merged.sum());
        assert_eq!(direct.buckets(), merged.buckets());
    }
}
