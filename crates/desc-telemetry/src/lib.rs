//! Unified telemetry for the DESC workspace.
//!
//! Three pieces, all dependency-free so the build stays hermetic:
//!
//! 1. A process-wide **metric registry** ([`Registry`]) of atomic
//!    [`Counter`]s, [`Gauge`]s, and log2-bucketed [`Histogram`]s, with
//!    static-caching registration macros ([`counter!`], [`gauge!`],
//!    [`histogram!`]) so a hot path pays one pointer load after the
//!    first use.
//! 2. A **span trace**: fixed-capacity per-thread ring buffers of
//!    labelled wall-clock spans ([`span`]), merged and time-sorted at
//!    [`drain_spans`], so parallel sweeps can report per-cell timing.
//! 3. **Machine-readable run reports**: an in-tree JSON value type with
//!    writer *and* parser ([`json`]) plus a [`report`] builder that
//!    serializes a registry snapshot with build/seed/config metadata.
//!    The emitted `desc-run-report/v1` format is specified in
//!    `docs/REPORT_SCHEMA.md` at the repository root (key-by-key
//!    tables, a worked example, and the stability/versioning rules);
//!    `tests/schema_doc.rs` pins the document to the code.
//!
//! # Zero cost when disabled
//!
//! Telemetry is off by default. Every instrumentation site in the
//! workspace is guarded by [`enabled`] — a single relaxed atomic load
//! and a branch — so instrumented hot paths (e.g. `Link::transfer`,
//! which runs on the order of a million transfers per second) are
//! unchanged when telemetry is off. Metric updates use only
//! order-independent operations (add, max), so counter values are
//! identical for any `--jobs N` worker count.
//!
//! # Examples
//!
//! ```
//! desc_telemetry::set_enabled(true);
//! desc_telemetry::counter!("example.requests").add(3);
//! desc_telemetry::histogram!("example.latency_cycles").record(17);
//! let snap = desc_telemetry::global().snapshot();
//! assert_eq!(snap.counter("example.requests"), Some(3));
//! desc_telemetry::set_enabled(false);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capture;
pub mod chrome;
pub mod json;
pub mod metrics;
pub mod registry;
pub mod report;
pub mod trace;

pub use capture::{capture_sink, install_capture, replay, with_capture, CaptureGuard, CaptureSink};
pub use chrome::{chrome_trace, write_chrome_trace};
pub use json::Json;
pub use metrics::{Counter, Gauge, Histogram, LocalHistogram, HISTOGRAM_BUCKETS};
pub use registry::{MetricValue, Registry, Snapshot};
pub use report::{
    CacheReport, PoolUtilization, RegionUtilization, Report, ReportMeta, ServeReport,
    WorkerUtilization,
};
pub use trace::{
    current_worker, drain_spans, now_us, set_context, span, spans_dropped, worker_names, Span,
    SpanGuard,
};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// True when telemetry collection is on. One relaxed load — this is
/// the guard every instrumentation site branches on.
#[inline(always)]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns telemetry collection on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The process-wide metric registry.
#[must_use]
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Looks up (registering on first use) the named [`Counter`] in the
/// global registry, caching the reference in a hidden `static` so
/// subsequent hits are a single pointer load.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        *CELL.get_or_init(|| $crate::global().counter($name))
    }};
}

/// Looks up (registering on first use) the named [`Gauge`] in the
/// global registry; cached like [`counter!`].
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<&'static $crate::Gauge> =
            ::std::sync::OnceLock::new();
        *CELL.get_or_init(|| $crate::global().gauge($name))
    }};
}

/// Looks up (registering on first use) the named [`Histogram`] in the
/// global registry; cached like [`counter!`].
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *CELL.get_or_init(|| $crate::global().histogram($name))
    }};
}
