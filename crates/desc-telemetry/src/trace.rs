//! Structured event tracing: fixed-capacity per-thread ring buffers of
//! wall-clock spans, merged and time-sorted at drain.
//!
//! A [`span`] is cheap to open (one enabled check; an `Instant::now`
//! only when telemetry is on) and records itself when the guard drops.
//! Each thread appends into its own ring buffer — no cross-thread
//! contention on the hot path — and [`drain_spans`] merges every
//! thread's buffer into one time-ordered list.
//!
//! # Timeline model
//!
//! Every span carries enough identity to be placed on an execution
//! timeline (and exported as a Chrome trace, see [`crate::chrome`]):
//!
//! * a **monotonic process timebase** — `start_us` is microseconds
//!   since the process's trace epoch (first telemetry use), taken from
//!   one shared `Instant`, so spans from different threads are
//!   directly comparable;
//! * a **worker identity** — a small stable ordinal per recording
//!   thread ([`current_worker`]), with a human-readable name (the OS
//!   thread name when set, e.g. `desc-exec-0`) in [`worker_names`];
//! * a **context label** — the process-wide scope set by
//!   [`set_context`] (the experiment name during a `repro` run), so a
//!   `cell` or `partition` span recorded on a pool worker still says
//!   which figure it belonged to.
//!
//! # Overflow is visible
//!
//! When a ring overflows, the oldest span is dropped and the
//! process-wide [`spans_dropped`] count incremented; run reports
//! surface that count in `meta.spans_dropped`, so a truncated timeline
//! is visible in the artifact rather than silent. The per-thread
//! capacity defaults to [`DEFAULT_RING_CAPACITY`] and can be raised
//! with the `DESC_TRACE_RING` environment variable (read once, at the
//! first recorded span).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default per-thread ring capacity. Sweeps record one span per cell
/// plus one per bank partition and executor region, so this covers the
/// quick scale comfortably; full-scale `repro all` timelines may need
/// `DESC_TRACE_RING` raised (overflow shows up in `spans_dropped`).
pub const DEFAULT_RING_CAPACITY: usize = 16_384;

/// Parses a `DESC_TRACE_RING`-style override: a positive integer wins,
/// anything else falls back to [`DEFAULT_RING_CAPACITY`].
#[must_use]
pub fn ring_capacity_from(var: Option<&str>) -> usize {
    var.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_RING_CAPACITY)
}

/// The per-thread ring capacity in effect (env read once).
fn ring_capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| ring_capacity_from(std::env::var("DESC_TRACE_RING").ok().as_deref()))
}

static DROPPED: AtomicU64 = AtomicU64::new(0);

/// Spans dropped to ring overflow since process start. Reported as
/// `meta.spans_dropped` in `desc-run-report/v1` so truncated timelines
/// are visible; raise `DESC_TRACE_RING` to avoid drops.
#[must_use]
pub fn spans_dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// One completed span: a named, labelled interval of wall-clock time
/// attributed to the worker thread that recorded it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Static category, e.g. `"experiment"`, `"cell"`, `"partition"`,
    /// or `"region"`.
    pub name: &'static str,
    /// Instance label, e.g. an experiment name, a `scheme/app` cell
    /// label, or a bank partition index.
    pub label: String,
    /// Process-wide context active when the span was opened (the
    /// experiment name during a `repro` run); empty when none was set.
    pub ctx: String,
    /// Stable ordinal of the recording thread (see [`worker_names`]);
    /// the Chrome-trace lane this span lands in.
    pub worker: u32,
    /// Microseconds since the process's trace epoch (first telemetry
    /// use) at which the span started.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub duration_us: u64,
}

#[derive(Debug, Default)]
struct Ring {
    spans: VecDeque<Span>,
}

impl Ring {
    fn push(&mut self, span: Span) {
        if self.spans.len() == ring_capacity() {
            self.spans.pop_front();
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
        self.spans.push_back(span);
    }
}

/// Per-thread registration: the ring plus the thread's stable worker
/// ordinal and name, registered globally on first span.
struct Registered {
    rings: Vec<Arc<Mutex<Ring>>>,
    names: Vec<String>,
}

fn registered() -> &'static Mutex<Registered> {
    static REG: OnceLock<Mutex<Registered>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(Registered { rings: Vec::new(), names: Vec::new() }))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds elapsed on the monotonic process timebase (the same
/// epoch every span's `start_us` is measured from).
#[must_use]
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

thread_local! {
    static THREAD_RING: (u32, Arc<Mutex<Ring>>) = {
        let ring = Arc::new(Mutex::new(Ring::default()));
        let mut reg = registered().lock().expect("span ring list poisoned");
        let worker = reg.rings.len() as u32;
        let name = std::thread::current()
            .name()
            .map_or_else(|| format!("thread-{worker}"), str::to_owned);
        reg.rings.push(Arc::clone(&ring));
        reg.names.push(name);
        (worker, ring)
    };
}

/// The calling thread's stable worker ordinal, registering the thread
/// on first use. Ordinals index into [`worker_names`] and are the
/// `tid` lanes of the Chrome trace export.
#[must_use]
pub fn current_worker() -> u32 {
    THREAD_RING.with(|(worker, _)| *worker)
}

/// Names of every registered worker thread, indexed by worker ordinal.
/// A thread registers (with its OS thread name, or `thread-<ordinal>`
/// when unnamed) the first time it records a span or calls
/// [`current_worker`].
#[must_use]
pub fn worker_names() -> Vec<String> {
    registered().lock().expect("span ring list poisoned").names.clone()
}

fn context_cell() -> &'static Mutex<Arc<str>> {
    static CTX: OnceLock<Mutex<Arc<str>>> = OnceLock::new();
    CTX.get_or_init(|| Mutex::new(Arc::from("")))
}

/// Sets the process-wide span context (e.g. the experiment currently
/// running). Every span opened afterwards — on any thread — records
/// this label in its `ctx` field until the context changes, which is
/// what attributes pool-worker spans to the sweep that submitted them.
/// Experiments run serially, so a single process-wide label suffices.
pub fn set_context(label: &str) {
    *context_cell().lock().expect("span context poisoned") = Arc::from(label);
}

/// The current process-wide span context (empty when unset).
#[must_use]
pub fn context() -> Arc<str> {
    Arc::clone(&context_cell().lock().expect("span context poisoned"))
}

/// Opens a span; it records itself into the current thread's ring
/// buffer when the returned guard drops. Inert (no clock read, no
/// allocation retained) when telemetry is disabled.
#[must_use]
pub fn span(name: &'static str, label: impl Into<String>) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { inner: None };
    }
    // Touch the epoch before `start` so start_us can never underflow.
    let _ = epoch();
    SpanGuard { inner: Some((name, label.into(), context(), Instant::now())) }
}

/// RAII guard returned by [`span`]; measures until dropped.
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<(&'static str, String, Arc<str>, Instant)>,
}

impl SpanGuard {
    /// True when this guard is actually recording (telemetry was
    /// enabled at open time).
    #[must_use]
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((name, label, ctx, start)) = self.inner.take() {
            THREAD_RING.with(|(worker, ring)| {
                let span = Span {
                    name,
                    label,
                    ctx: ctx.as_ref().to_owned(),
                    worker: *worker,
                    start_us: start.duration_since(epoch()).as_micros() as u64,
                    duration_us: start.elapsed().as_micros() as u64,
                };
                ring.lock().expect("thread span ring poisoned").push(span);
            });
        }
    }
}

/// Drains every thread's ring buffer into one list sorted by start
/// time (ties broken by name, label, then worker, so ordering is
/// stable).
#[must_use]
pub fn drain_spans() -> Vec<Span> {
    let mut all = Vec::new();
    for ring in registered().lock().expect("span ring list poisoned").rings.iter() {
        let mut ring = ring.lock().expect("span ring poisoned");
        all.extend(ring.spans.drain(..));
    }
    all.sort_by(|a, b| {
        a.start_us
            .cmp(&b.start_us)
            .then_with(|| a.name.cmp(b.name))
            .then_with(|| a.label.cmp(&b.label))
            .then_with(|| a.worker.cmp(&b.worker))
    });
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_and_drain() {
        crate::set_enabled(true);
        set_context("test-ctx");
        {
            let _outer = span("test", "outer");
            let _inner = span("test", "inner");
        }
        set_context("");
        let spans = drain_spans();
        crate::set_enabled(false);
        let mine: Vec<&Span> = spans.iter().filter(|s| s.name == "test").collect();
        let labels: Vec<&str> = mine.iter().map(|s| s.label.as_str()).collect();
        assert!(labels.contains(&"outer") && labels.contains(&"inner"));
        // Both recorded on this thread, with the context at open time.
        let me = current_worker();
        assert!(mine.iter().all(|s| s.worker == me && s.ctx == "test-ctx"));
        assert!((me as usize) < worker_names().len());
        // Drained: a second drain returns nothing for this name.
        assert!(drain_spans().iter().all(|s| s.name != "test"));
    }

    #[test]
    fn disabled_spans_are_inert() {
        crate::set_enabled(false);
        let g = span("test-disabled", "x");
        assert!(!g.is_recording());
        drop(g);
        assert!(drain_spans().iter().all(|s| s.name != "test-disabled"));
    }

    #[test]
    fn ring_capacity_override_parses() {
        assert_eq!(ring_capacity_from(None), DEFAULT_RING_CAPACITY);
        assert_eq!(ring_capacity_from(Some("nope")), DEFAULT_RING_CAPACITY);
        assert_eq!(ring_capacity_from(Some("0")), DEFAULT_RING_CAPACITY);
        assert_eq!(ring_capacity_from(Some("  512 ")), 512);
    }
}
