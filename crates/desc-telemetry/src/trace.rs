//! Structured event tracing: fixed-capacity per-thread ring buffers of
//! wall-clock spans, merged and time-sorted at drain.
//!
//! A [`span`] is cheap to open (one enabled check; an `Instant::now`
//! only when telemetry is on) and records itself when the guard drops.
//! Each thread appends into its own ring buffer — no cross-thread
//! contention on the hot path — and [`drain_spans`] merges every
//! thread's buffer into one time-ordered list. When a ring overflows,
//! the oldest span is dropped and the `telemetry.spans_dropped`
//! counter incremented, so truncation is visible rather than silent.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Per-thread ring capacity. Sweeps record one span per cell, so this
/// comfortably covers every figure at full scale.
const RING_CAPACITY: usize = 4096;

/// One completed span: a named, labelled interval of wall-clock time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Static category, e.g. `"experiment"` or `"cell"`.
    pub name: &'static str,
    /// Instance label, e.g. an experiment or cell identifier.
    pub label: String,
    /// Microseconds since the process's trace epoch (first telemetry
    /// use) at which the span started.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub duration_us: u64,
}

#[derive(Debug, Default)]
struct Ring {
    spans: VecDeque<Span>,
}

impl Ring {
    fn push(&mut self, span: Span) {
        if self.spans.len() == RING_CAPACITY {
            self.spans.pop_front();
            crate::counter!("telemetry.spans_dropped").incr();
        }
        self.spans.push_back(span);
    }
}

/// All per-thread rings ever created; drained (not removed) by
/// [`drain_spans`]. Threads register their ring on first span.
fn rings() -> &'static Mutex<Vec<Arc<Mutex<Ring>>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Mutex<Ring>>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    static THREAD_RING: Arc<Mutex<Ring>> = {
        let ring = Arc::new(Mutex::new(Ring::default()));
        rings().lock().expect("span ring list poisoned").push(Arc::clone(&ring));
        ring
    };
}

/// Opens a span; it records itself into the current thread's ring
/// buffer when the returned guard drops. Inert (no clock read, no
/// allocation retained) when telemetry is disabled.
#[must_use]
pub fn span(name: &'static str, label: impl Into<String>) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { inner: None };
    }
    // Touch the epoch before `start` so start_us can never underflow.
    let _ = epoch();
    SpanGuard { inner: Some((name, label.into(), Instant::now())) }
}

/// RAII guard returned by [`span`]; measures until dropped.
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<(&'static str, String, Instant)>,
}

impl SpanGuard {
    /// True when this guard is actually recording (telemetry was
    /// enabled at open time).
    #[must_use]
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((name, label, start)) = self.inner.take() {
            let span = Span {
                name,
                label,
                start_us: start.duration_since(epoch()).as_micros() as u64,
                duration_us: start.elapsed().as_micros() as u64,
            };
            THREAD_RING.with(|ring| {
                ring.lock().expect("thread span ring poisoned").push(span);
            });
        }
    }
}

/// Drains every thread's ring buffer into one list sorted by start
/// time (ties broken by name then label, so ordering is stable).
#[must_use]
pub fn drain_spans() -> Vec<Span> {
    let mut all = Vec::new();
    for ring in rings().lock().expect("span ring list poisoned").iter() {
        let mut ring = ring.lock().expect("span ring poisoned");
        all.extend(ring.spans.drain(..));
    }
    all.sort_by(|a, b| {
        a.start_us
            .cmp(&b.start_us)
            .then_with(|| a.name.cmp(b.name))
            .then_with(|| a.label.cmp(&b.label))
    });
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_and_drain() {
        crate::set_enabled(true);
        {
            let _outer = span("test", "outer");
            let _inner = span("test", "inner");
        }
        let spans = drain_spans();
        crate::set_enabled(false);
        let labels: Vec<&str> =
            spans.iter().filter(|s| s.name == "test").map(|s| s.label.as_str()).collect();
        assert!(labels.contains(&"outer") && labels.contains(&"inner"));
        // Drained: a second drain returns nothing for this name.
        assert!(drain_spans().iter().all(|s| s.name != "test"));
    }

    #[test]
    fn disabled_spans_are_inert() {
        crate::set_enabled(false);
        let g = span("test-disabled", "x");
        assert!(!g.is_recording());
        drop(g);
        assert!(drain_spans().iter().all(|s| s.name != "test-disabled"));
    }
}
