//! A minimal in-tree JSON value type with writer and parser.
//!
//! Exists so run reports and append-mode bench histories need no
//! external crates (the build is hermetic/offline). Objects preserve
//! insertion order, so identical runs serialize byte-identically.
//! Integers are kept as `u64`/`i64` variants — counter totals survive
//! a write/parse round trip exactly, with no `f64` precision loss.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer (covers counters up to `u64::MAX`).
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered `(key, value)` pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    #[must_use]
    pub fn obj() -> Self {
        Json::Obj(Vec::new())
    }

    /// Appends `key: value` to an object; panics on non-objects
    /// (construction-time misuse, not data-dependent).
    #[must_use]
    pub fn with(mut self, key: &str, value: Json) -> Self {
        match &mut self {
            Json::Obj(pairs) => pairs.push((key.to_owned(), value)),
            _ => panic!("Json::with called on a non-object"),
        }
        self
    }

    /// Member lookup on objects; `None` otherwise.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array; `None` otherwise.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// String payload; `None` otherwise.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload as `f64` (from any numeric variant).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(u) => Some(*u as f64),
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric payload as `u64` if exactly representable.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(u) => Some(*u),
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation and a trailing newline.
    #[must_use]
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_value(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_value(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(n) => {
                if n.is_finite() {
                    // Shortest round-trippable form; integral floats
                    // keep a ".0" so they parse back as floats.
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        let _ = write!(out, "{n:.1}");
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_value(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_value(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (single value plus optional trailing
    /// whitespace).
    ///
    /// # Errors
    ///
    /// Returns a message naming the byte offset of the first syntax
    /// error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        skip_ws(bytes, &mut pos);
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'n') => parse_lit(bytes, pos, b"null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, b"true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, b"false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                skip_ws(bytes, pos);
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}", pos = *pos));
                }
                *pos += 1;
                skip_ws(bytes, pos);
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:#04x} at byte {pos}", pos = *pos)),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &[u8], value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_owned())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape".to_owned())?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape".to_owned())?;
                        // Surrogates are not produced by our writer;
                        // map unpaired ones to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so
                // boundaries are valid).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid utf-8".to_owned())?;
                let c = rest.chars().next().ok_or_else(|| "unterminated string".to_owned())?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(bytes.get(*pos), Some(c) if c.is_ascii_digit()) {
        *pos += 1;
    }
    let mut is_float = false;
    if bytes.get(*pos) == Some(&b'.') {
        is_float = true;
        *pos += 1;
        while matches!(bytes.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        is_float = true;
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        while matches!(bytes.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad number".to_owned())?;
    if !is_float {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Json::UInt(u));
        }
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Json::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_exact_integers() {
        let doc = Json::obj()
            .with("max", Json::UInt(u64::MAX))
            .with("neg", Json::Int(-42))
            .with("pi", Json::Num(3.25))
            .with("s", Json::Str("a\"b\\c\nd".to_owned()))
            .with("arr", Json::Arr(vec![Json::Null, Json::Bool(true), Json::UInt(0)]))
            .with("empty", Json::obj());
        let text = doc.to_pretty();
        let back = Json::parse(&text).expect("round trip parses");
        assert_eq!(back, doc);
        assert_eq!(back.get("max").and_then(Json::as_u64), Some(u64::MAX));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2,, 3]").is_err());
        assert!(Json::parse("123 456").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn ordering_is_preserved() {
        let parsed = Json::parse("{\"z\": 1, \"a\": 2}").expect("parses");
        match &parsed {
            Json::Obj(pairs) => {
                assert_eq!(pairs[0].0, "z");
                assert_eq!(pairs[1].0, "a");
            }
            _ => panic!("expected object"),
        }
    }
}
