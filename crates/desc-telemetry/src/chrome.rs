//! Chrome trace-event export: renders drained [`Span`]s as a JSON
//! document loadable by Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`, with **one lane per worker thread**.
//!
//! The format is the Trace Event Format's JSON-object flavour: a
//! `traceEvents` array of complete (`"ph": "X"`) events — one per
//! span, `ts`/`dur` in microseconds on the process's monotonic
//! timebase — preceded by metadata (`"ph": "M"`) events naming the
//! process and each worker lane. Lane ids are the spans' stable
//! [`Span::worker`] ordinals, so the same thread always renders in the
//! same row and `pool_utilization` worker entries in the run report
//! line up with what the timeline shows.
//!
//! `repro --trace out.json` and `bench_pipeline --trace out.json`
//! write this format; `docs/TELEMETRY.md` walks through loading it.

use crate::json::Json;
use crate::trace::Span;
use std::path::Path;

/// Builds the Chrome trace-event document for `spans`.
///
/// `process_name` labels the single process row (e.g. `"repro"`).
/// `worker_names` maps worker ordinals to lane names (pass
/// [`crate::worker_names()`]); ordinals past its end fall back to
/// `thread-<n>`.
#[must_use]
pub fn chrome_trace(process_name: &str, worker_names: &[String], spans: &[Span]) -> Json {
    let mut events: Vec<Json> = Vec::with_capacity(spans.len() + worker_names.len() + 1);
    events.push(meta_event("process_name", 0, process_name));

    // One named lane per worker that appears in the span set (plus a
    // sort index so lanes render in ordinal order).
    let mut lanes: Vec<u32> = spans.iter().map(|s| s.worker).collect();
    lanes.sort_unstable();
    lanes.dedup();
    for &w in &lanes {
        let fallback;
        let name = match worker_names.get(w as usize) {
            Some(n) => n.as_str(),
            None => {
                fallback = format!("thread-{w}");
                &fallback
            }
        };
        events.push(meta_event("thread_name", w, name));
        events.push(
            Json::obj()
                .with("name", Json::Str("thread_sort_index".to_owned()))
                .with("ph", Json::Str("M".to_owned()))
                .with("pid", Json::UInt(0))
                .with("tid", Json::UInt(u64::from(w)))
                .with("args", Json::obj().with("sort_index", Json::UInt(u64::from(w)))),
        );
    }

    for s in spans {
        let name = if s.label.is_empty() { s.name.to_owned() } else { s.label.clone() };
        let mut args = Json::obj().with("family", Json::Str(s.name.to_owned()));
        if !s.ctx.is_empty() {
            args = args.with("ctx", Json::Str(s.ctx.clone()));
        }
        events.push(
            Json::obj()
                .with("name", Json::Str(name))
                .with("cat", Json::Str(s.name.to_owned()))
                .with("ph", Json::Str("X".to_owned()))
                .with("ts", Json::UInt(s.start_us))
                .with("dur", Json::UInt(s.duration_us))
                .with("pid", Json::UInt(0))
                .with("tid", Json::UInt(u64::from(s.worker)))
                .with("args", args),
        );
    }

    Json::obj()
        .with("traceEvents", Json::Arr(events))
        .with("displayTimeUnit", Json::Str("ms".to_owned()))
}

fn meta_event(kind: &str, tid: u32, name: &str) -> Json {
    Json::obj()
        .with("name", Json::Str(kind.to_owned()))
        .with("ph", Json::Str("M".to_owned()))
        .with("pid", Json::UInt(0))
        .with("tid", Json::UInt(u64::from(tid)))
        .with("args", Json::obj().with("name", Json::Str(name.to_owned())))
}

/// Serializes [`chrome_trace`] for `spans` (with the process-global
/// worker names) and writes it to `path`.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_chrome_trace(
    path: &Path,
    process_name: &str,
    spans: &[Span],
) -> std::io::Result<()> {
    let doc = chrome_trace(process_name, &crate::worker_names(), spans);
    std::fs::write(path, doc.to_pretty())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(worker: u32, label: &str, start: u64) -> Span {
        Span {
            name: "cell",
            label: label.to_owned(),
            ctx: "fig16".to_owned(),
            worker,
            start_us: start,
            duration_us: 10,
        }
    }

    #[test]
    fn trace_has_lane_metadata_and_one_event_per_span() {
        let names = vec!["main".to_owned(), "desc-exec-0".to_owned()];
        let spans = vec![sample(0, "a/b", 5), sample(1, "c/d", 7), sample(1, "e/f", 9)];
        let doc = chrome_trace("repro", &names, &spans);
        let events = doc.get("traceEvents").and_then(Json::as_arr).expect("traceEvents");
        let xs: Vec<&Json> =
            events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("X")).collect();
        assert_eq!(xs.len(), 3);
        // Every X event's lane has a thread_name metadata event.
        for x in &xs {
            let tid = x.get("tid").and_then(Json::as_u64).expect("tid");
            assert!(events.iter().any(|e| {
                e.get("ph").and_then(Json::as_str) == Some("M")
                    && e.get("name").and_then(Json::as_str) == Some("thread_name")
                    && e.get("tid").and_then(Json::as_u64) == Some(tid)
            }));
        }
        // Labels become event names; family and ctx land in args.
        assert_eq!(xs[0].get("name").and_then(Json::as_str), Some("a/b"));
        let args = xs[0].get("args").expect("args");
        assert_eq!(args.get("family").and_then(Json::as_str), Some("cell"));
        assert_eq!(args.get("ctx").and_then(Json::as_str), Some("fig16"));
        // The document round-trips through the in-tree parser.
        let text = doc.to_pretty();
        assert!(Json::parse(&text).is_ok());
    }

    #[test]
    fn unknown_worker_gets_fallback_lane_name() {
        let doc = chrome_trace("t", &[], &[sample(7, "x", 1)]);
        let events = doc.get("traceEvents").and_then(Json::as_arr).expect("traceEvents");
        assert!(events.iter().any(|e| {
            e.get("name").and_then(Json::as_str) == Some("thread_name")
                && e.get("args").and_then(|a| a.get("name")).and_then(Json::as_str)
                    == Some("thread-7")
        }));
    }
}
