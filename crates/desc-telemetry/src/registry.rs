//! The process-wide metric registry and point-in-time snapshots.

use crate::metrics::{Counter, Gauge, Histogram, HISTOGRAM_BUCKETS};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Named metrics, registered on first use and alive for the process
/// lifetime (references are `&'static`, obtained by leaking one
/// allocation per distinct metric name — bounded by the number of
/// distinct names, not by call volume).
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, &'static Counter>>,
    gauges: Mutex<BTreeMap<String, &'static Gauge>>,
    histograms: Mutex<BTreeMap<String, &'static Histogram>>,
}

impl Registry {
    /// An empty registry. Most callers want [`crate::global`] instead.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name`, creating it on first use.
    /// Registry counters carry their name so updates can be mirrored
    /// into an installed [`crate::capture::CaptureSink`].
    pub fn counter(&self, name: &str) -> &'static Counter {
        let mut map = self.counters.lock().expect("counter registry poisoned");
        if let Some(c) = map.get(name) {
            return c;
        }
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let c: &'static Counter = Box::leak(Box::new(Counter::named(leaked)));
        map.insert(name.to_owned(), c);
        c
    }

    /// The gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        let mut map = self.gauges.lock().expect("gauge registry poisoned");
        if let Some(g) = map.get(name) {
            return g;
        }
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let g: &'static Gauge = Box::leak(Box::new(Gauge::named(leaked)));
        map.insert(name.to_owned(), g);
        g
    }

    /// The histogram registered under `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        let mut map = self.histograms.lock().expect("histogram registry poisoned");
        if let Some(h) = map.get(name) {
            return h;
        }
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let h: &'static Histogram = Box::leak(Box::new(Histogram::named(leaked)));
        map.insert(name.to_owned(), h);
        h
    }

    /// A point-in-time snapshot of every registered metric, sorted by
    /// name (BTreeMap order), so two identical runs serialize
    /// identically.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let mut metrics = Vec::new();
        for (name, c) in self.counters.lock().expect("counter registry poisoned").iter() {
            metrics.push((name.clone(), MetricValue::Counter(c.get())));
        }
        for (name, g) in self.gauges.lock().expect("gauge registry poisoned").iter() {
            metrics.push((name.clone(), MetricValue::Gauge(g.get())));
        }
        for (name, h) in self.histograms.lock().expect("histogram registry poisoned").iter() {
            metrics.push((
                name.clone(),
                MetricValue::Histogram {
                    count: h.count(),
                    sum: h.sum(),
                    buckets: Box::new(h.buckets()),
                },
            ));
        }
        metrics.sort_by(|a, b| a.0.cmp(&b.0));
        Snapshot { metrics }
    }

    /// Resets every registered metric to zero (names stay registered).
    pub fn reset_all(&self) {
        for c in self.counters.lock().expect("counter registry poisoned").values() {
            c.reset();
        }
        for g in self.gauges.lock().expect("gauge registry poisoned").values() {
            g.reset();
        }
        for h in self.histograms.lock().expect("histogram registry poisoned").values() {
            h.reset();
        }
    }
}

/// A single metric's value at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A counter total.
    Counter(u64),
    /// A gauge value.
    Gauge(u64),
    /// A histogram summary.
    Histogram {
        /// Number of samples.
        count: u64,
        /// Wrapping sum of samples.
        sum: u64,
        /// Per-bucket sample counts (see [`crate::metrics::bucket_index`]).
        /// Boxed so the enum stays pointer-sized-ish for the common
        /// counter/gauge variants.
        buckets: Box<[u64; HISTOGRAM_BUCKETS]>,
    },
}

/// A name-sorted snapshot of the registry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// `(name, value)` pairs sorted by name.
    pub metrics: Vec<(String, MetricValue)>,
}

impl Snapshot {
    /// Looks up a counter total by name.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.metrics.iter().find_map(|(n, v)| match v {
            MetricValue::Counter(c) if n == name => Some(*c),
            _ => None,
        })
    }

    /// Looks up a gauge value by name.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.metrics.iter().find_map(|(n, v)| match v {
            MetricValue::Gauge(g) if n == name => Some(*g),
            _ => None,
        })
    }

    /// Looks up a histogram `(count, sum)` by name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<(u64, u64)> {
        self.metrics.iter().find_map(|(n, v)| match v {
            MetricValue::Histogram { count, sum, .. } if n == name => Some((*count, *sum)),
            _ => None,
        })
    }

    /// Names present in the snapshot, in sorted order.
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        self.metrics.iter().map(|(n, _)| n.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_once_and_snapshot() {
        let r = Registry::new();
        let a = r.counter("x.a");
        let a2 = r.counter("x.a");
        assert!(std::ptr::eq(a, a2));
        a.add(7);
        r.gauge("x.g").record_max(9);
        r.histogram("x.h").record(3);
        let snap = r.snapshot();
        assert_eq!(snap.counter("x.a"), Some(7));
        assert_eq!(snap.gauge("x.g"), Some(9));
        assert_eq!(snap.histogram("x.h"), Some((1, 3)));
        assert_eq!(snap.names(), vec!["x.a", "x.g", "x.h"]);
        r.reset_all();
        assert_eq!(r.snapshot().counter("x.a"), Some(0));
    }
}
