//! Per-thread capture of registry metric updates, and replay of a
//! captured delta back into the global registry.
//!
//! This is the telemetry half of the content-addressed cell cache
//! (`desc-cache`): a cold cell computation runs with a
//! [`CaptureSink`] installed on its thread, so every update to a
//! *named* (registry-owned) metric is **mirrored** — the global
//! registry still receives the update as usual, and the sink records
//! the same delta on the side. The per-cell delta is stored next to
//! the cell result; a warm cache hit calls [`replay`] to apply the
//! stored delta to the global registry, making a warm run's report
//! `metrics` byte-identical to a cold run's.
//!
//! Design points:
//!
//! - **Mirror, not redirect.** A captured run is metric-identical to
//!   an uncaptured run; capture only *also* records the delta.
//! - **Thread-local installation, pool-aware.** [`install_capture`]
//!   installs a sink on the current thread (guard-restored).
//!   `desc-exec` snapshots the submitting thread's sink when a region
//!   is created and installs it on every worker that drains the
//!   region, so a cell's nested partition work is captured no matter
//!   which pool thread runs it.
//! - **Zero cost when idle.** Every mirror hook first checks a
//!   process-wide count of installed sinks with one relaxed load.
//! - **Scoped-out names.** Updates to `pool.*`, `cache.*`, and
//!   `serve.*` metrics describe *where and how* work ran, not *what*
//!   the cell computed; they are never captured (and are likewise
//!   filtered out of determinism comparisons).
//! - **Registration parity.** Mirror hooks fire even for zero-valued
//!   updates, so replaying a delta registers exactly the metric names
//!   the direct computation would have registered.
//! - **Gauges replay as running maxima.** The only gauges updated
//!   inside cell computations use [`crate::Gauge::record_max`]
//!   semantics (e.g. `core.cost.max_cycles`); replay applies
//!   `record_max`, which is order-independent and idempotent.

use crate::metrics::HISTOGRAM_BUCKETS;
use crate::registry::{MetricValue, Snapshot};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Number of threads with a sink currently installed. The fast path
/// for every mirror hook: one relaxed load, and when it is zero the
/// hook returns immediately.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SINK: RefCell<Option<Arc<CaptureSink>>> = const { RefCell::new(None) };
}

/// True when updates to `name` are mirrored into capture sinks.
/// `pool.*` (executor shape), `cache.*` (cache bookkeeping), and
/// `serve.*` (service admission bookkeeping) are excluded — they
/// describe the run, not the cell result.
#[inline]
fn captured(name: &str) -> bool {
    !name.starts_with("pool.") && !name.starts_with("cache.") && !name.starts_with("serve.")
}

#[derive(Debug, Clone, Copy)]
struct HistCap {
    count: u64,
    sum: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

#[derive(Debug, Default)]
struct SinkInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, HistCap>,
    /// Operational side-channel counters ([`CaptureSink::incr_op`]),
    /// deliberately excluded from [`CaptureSink::snapshot`]: they
    /// describe how the scope's work was *served* (e.g. how many cells
    /// a `desc-serve` request received from an in-flight leader), not
    /// what it computed, so they must never reach the deterministic
    /// `metrics` stanza.
    ops: BTreeMap<String, u64>,
}

/// An accumulating record of named-metric updates on the threads it
/// is installed on. Unlike [`crate::Registry`] it never leaks:
/// thousands of short-lived per-cell sinks are expected.
#[derive(Debug, Default)]
pub struct CaptureSink {
    inner: Mutex<SinkInner>,
}

impl CaptureSink {
    /// A fresh empty sink, ready to pass to [`install_capture`] /
    /// [`with_capture`] (shared `Arc` so `desc-exec` workers can
    /// mirror into the same sink).
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// The captured delta as a name-sorted [`Snapshot`], shaped
    /// exactly like [`crate::Registry::snapshot`] so it can be stored
    /// and later [`replay`]ed.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().expect("capture sink poisoned");
        let mut metrics = Vec::with_capacity(
            inner.counters.len() + inner.gauges.len() + inner.histograms.len(),
        );
        for (name, &v) in &inner.counters {
            metrics.push((name.clone(), MetricValue::Counter(v)));
        }
        for (name, &v) in &inner.gauges {
            metrics.push((name.clone(), MetricValue::Gauge(v)));
        }
        for (name, h) in &inner.histograms {
            metrics.push((
                name.clone(),
                MetricValue::Histogram {
                    count: h.count,
                    sum: h.sum,
                    buckets: Box::new(h.buckets),
                },
            ));
        }
        metrics.sort_by(|a, b| a.0.cmp(&b.0));
        Snapshot { metrics }
    }

    /// True when nothing has been captured yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        let inner = self.inner.lock().expect("capture sink poisoned");
        inner.counters.is_empty() && inner.gauges.is_empty() && inner.histograms.is_empty()
    }

    /// Merges a captured delta into this sink *without* touching the
    /// global registry: counters and histogram parts add, gauges raise
    /// (`record_max`), mirroring [`replay`]'s semantics. This is how a
    /// scope that wraps cached work (e.g. one `desc-serve` request)
    /// keeps a complete delta even though nested per-cell sinks shadow
    /// it: the cell path absorbs each cell's delta — freshly captured
    /// on a cold compute, loaded from the store on a warm hit —
    /// into the sink that was installed before the cell's own.
    pub fn absorb(&self, delta: &Snapshot) {
        for (name, value) in &delta.metrics {
            match value {
                MetricValue::Counter(n) => self.add_counter(name, *n),
                MetricValue::Gauge(v) => self.gauge_max(name, *v),
                MetricValue::Histogram { count, sum, buckets } => {
                    self.hist_parts(name, &HistCap { count: *count, sum: *sum, buckets: **buckets });
                }
            }
        }
    }

    /// Increments an operational side-channel counter on this sink.
    /// Unlike mirrored metrics these are scoped to the sink alone
    /// (nothing reaches the global registry) and excluded from
    /// [`CaptureSink::snapshot`], so a scope can count *how* its work
    /// was served without perturbing the deterministic delta.
    pub fn incr_op(&self, name: &str) {
        let mut inner = self.inner.lock().expect("capture sink poisoned");
        if let Some(v) = inner.ops.get_mut(name) {
            *v += 1;
        } else {
            inner.ops.insert(name.to_owned(), 1);
        }
    }

    /// The current value of an operational counter (0 if never
    /// incremented).
    #[must_use]
    pub fn op_count(&self, name: &str) -> u64 {
        let inner = self.inner.lock().expect("capture sink poisoned");
        inner.ops.get(name).copied().unwrap_or(0)
    }

    fn add_counter(&self, name: &str, n: u64) {
        let mut inner = self.inner.lock().expect("capture sink poisoned");
        if let Some(v) = inner.counters.get_mut(name) {
            *v = v.wrapping_add(n);
        } else {
            inner.counters.insert(name.to_owned(), n);
        }
    }

    fn gauge_set(&self, name: &str, v: u64) {
        let mut inner = self.inner.lock().expect("capture sink poisoned");
        inner.gauges.insert(name.to_owned(), v);
    }

    fn gauge_max(&self, name: &str, v: u64) {
        let mut inner = self.inner.lock().expect("capture sink poisoned");
        if let Some(cur) = inner.gauges.get_mut(name) {
            *cur = (*cur).max(v);
        } else {
            inner.gauges.insert(name.to_owned(), v);
        }
    }

    fn hist_sample(&self, name: &str, value: u64) {
        let mut parts = HistCap { count: 1, sum: value, buckets: [0; HISTOGRAM_BUCKETS] };
        parts.buckets[crate::metrics::bucket_index(value)] = 1;
        self.hist_parts(name, &parts);
    }

    fn hist_parts(&self, name: &str, parts: &HistCap) {
        let mut inner = self.inner.lock().expect("capture sink poisoned");
        if let Some(h) = inner.histograms.get_mut(name) {
            h.count += parts.count;
            h.sum = h.sum.wrapping_add(parts.sum);
            for (mine, &theirs) in h.buckets.iter_mut().zip(&parts.buckets) {
                *mine += theirs;
            }
        } else {
            inner.histograms.insert(name.to_owned(), *parts);
        }
    }
}

/// Restores the previously installed sink (if any) when dropped.
#[derive(Debug)]
pub struct CaptureGuard {
    prev: Option<Arc<CaptureSink>>,
}

impl Drop for CaptureGuard {
    fn drop(&mut self) {
        set_sink(self.prev.take());
    }
}

fn set_sink(new: Option<Arc<CaptureSink>>) -> Option<Arc<CaptureSink>> {
    let installing = new.is_some();
    let prev = SINK.with(|s| s.replace(new));
    match (prev.is_some(), installing) {
        (false, true) => {
            ACTIVE.fetch_add(1, Ordering::Relaxed);
        }
        (true, false) => {
            ACTIVE.fetch_sub(1, Ordering::Relaxed);
        }
        _ => {}
    }
    prev
}

/// Installs `sink` (or clears the installation with `None`) on the
/// current thread until the returned guard drops, restoring whatever
/// was installed before.
#[must_use]
pub fn install_capture(sink: Option<Arc<CaptureSink>>) -> CaptureGuard {
    CaptureGuard { prev: set_sink(sink) }
}

/// Runs `f` with `sink` installed on the current thread.
pub fn with_capture<R>(sink: &Arc<CaptureSink>, f: impl FnOnce() -> R) -> R {
    let _guard = install_capture(Some(Arc::clone(sink)));
    f()
}

/// The sink installed on the current thread, if any. `desc-exec`
/// snapshots this at region-submission time so pooled tasks inherit
/// the submitter's capture.
#[must_use]
pub fn capture_sink() -> Option<Arc<CaptureSink>> {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return None;
    }
    SINK.with(|s| s.borrow().clone())
}

/// Applies a captured delta to the global registry: counters and
/// histogram parts add, gauges raise (`record_max`). Replay never
/// re-mirrors, so it is safe while a capture is installed.
pub fn replay(delta: &Snapshot) {
    let reg = crate::global();
    for (name, value) in &delta.metrics {
        match value {
            MetricValue::Counter(n) => reg.counter(name).add_raw(*n),
            MetricValue::Gauge(v) => reg.gauge(name).max_raw(*v),
            MetricValue::Histogram { count, sum, buckets } => {
                reg.histogram(name).add_parts(*count, *sum, buckets);
            }
        }
    }
}

fn mirror(name: &str, apply: impl FnOnce(&CaptureSink)) {
    if !captured(name) {
        return;
    }
    SINK.with(|s| {
        if let Some(sink) = s.borrow().as_deref() {
            apply(sink);
        }
    });
}

#[inline]
pub(crate) fn mirror_counter(name: &str, n: u64) {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return;
    }
    mirror(name, |sink| sink.add_counter(name, n));
}

#[inline]
pub(crate) fn mirror_gauge_set(name: &str, v: u64) {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return;
    }
    mirror(name, |sink| sink.gauge_set(name, v));
}

#[inline]
pub(crate) fn mirror_gauge_max(name: &str, v: u64) {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return;
    }
    mirror(name, |sink| sink.gauge_max(name, v));
}

#[inline]
pub(crate) fn mirror_histogram_sample(name: &str, value: u64) {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return;
    }
    mirror(name, |sink| sink.hist_sample(name, value));
}

#[inline]
pub(crate) fn mirror_histogram_parts(
    name: &str,
    count: u64,
    sum: u64,
    buckets: &[u64; HISTOGRAM_BUCKETS],
) {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return;
    }
    mirror(name, |sink| sink.hist_parts(name, &HistCap { count, sum, buckets: *buckets }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LocalHistogram;

    #[test]
    fn mirror_records_delta_and_global_still_updates() {
        let reg = crate::global();
        let before = reg.counter("capture.test.mirrored").get();
        let sink = CaptureSink::new();
        with_capture(&sink, || {
            reg.counter("capture.test.mirrored").add(5);
            reg.gauge("capture.test.max").record_max(9);
            reg.histogram("capture.test.hist").record(3);
            reg.histogram("capture.test.hist").record(0);
        });
        // Global registry saw every update (mirror, not redirect).
        assert_eq!(reg.counter("capture.test.mirrored").get(), before + 5);
        let delta = sink.snapshot();
        assert_eq!(delta.counter("capture.test.mirrored"), Some(5));
        assert_eq!(delta.gauge("capture.test.max"), Some(9));
        assert_eq!(delta.histogram("capture.test.hist"), Some((2, 3)));
        // Nothing mirrors once the guard is gone.
        reg.counter("capture.test.mirrored").add(1);
        assert_eq!(sink.snapshot().counter("capture.test.mirrored"), Some(5));
    }

    #[test]
    fn pool_cache_and_serve_names_are_not_captured() {
        let reg = crate::global();
        let sink = CaptureSink::new();
        with_capture(&sink, || {
            reg.counter("pool.test.tasks").add(3);
            reg.counter("cache.test.hits").add(2);
            reg.counter("serve.test.accepted").add(4);
            reg.counter("capture.test.kept").add(1);
        });
        let delta = sink.snapshot();
        assert_eq!(delta.counter("pool.test.tasks"), None);
        assert_eq!(delta.counter("cache.test.hits"), None);
        assert_eq!(delta.counter("serve.test.accepted"), None);
        assert_eq!(delta.counter("capture.test.kept"), Some(1));
    }

    #[test]
    fn absorb_merges_like_replay_without_touching_the_registry() {
        let reg = crate::global();
        let cell = CaptureSink::new();
        with_capture(&cell, || {
            reg.counter("capture.test.absorbed").add(4);
            reg.gauge("capture.test.absorbed_max").record_max(11);
            reg.histogram("capture.test.absorbed_hist").record(7);
        });
        let delta = cell.snapshot();
        let global_before = reg.counter("capture.test.absorbed").get();

        let outer = CaptureSink::new();
        outer.absorb(&delta);
        outer.absorb(&delta);
        let merged = outer.snapshot();
        // Counters and histograms add across absorbs; gauges stay max.
        assert_eq!(merged.counter("capture.test.absorbed"), Some(8));
        assert_eq!(merged.gauge("capture.test.absorbed_max"), Some(11));
        assert_eq!(merged.histogram("capture.test.absorbed_hist"), Some((2, 14)));
        // The global registry never saw the absorbs.
        assert_eq!(reg.counter("capture.test.absorbed").get(), global_before);
    }

    /// The contract a request-scoped sink relies on: with a store in
    /// the middle, "absorb the inner delta into the outer sink" makes
    /// the outer sink identical to capturing the work directly.
    #[test]
    fn outer_sink_plus_absorb_equals_direct_capture() {
        let reg = crate::global();
        let direct = CaptureSink::new();
        with_capture(&direct, || {
            reg.counter("capture.test.composed").add(5);
            reg.histogram("capture.test.composed_hist").record(3);
        });

        let outer = CaptureSink::new();
        with_capture(&outer, || {
            let cell = CaptureSink::new();
            with_capture(&cell, || {
                reg.counter("capture.test.composed").add(5);
                reg.histogram("capture.test.composed_hist").record(3);
            });
            if let Some(current) = capture_sink() {
                current.absorb(&cell.snapshot());
            }
        });
        assert_eq!(outer.snapshot(), direct.snapshot());
    }

    #[test]
    fn op_counters_stay_out_of_the_snapshot() {
        let sink = CaptureSink::new();
        assert_eq!(sink.op_count("dedup_cells"), 0);
        sink.incr_op("dedup_cells");
        sink.incr_op("dedup_cells");
        assert_eq!(sink.op_count("dedup_cells"), 2);
        // The deterministic delta never sees the side channel.
        assert!(sink.snapshot().metrics.is_empty());
        assert!(sink.is_empty(), "op counters are not captured metrics");
    }

    #[test]
    fn zero_valued_updates_register_names() {
        let reg = crate::global();
        let sink = CaptureSink::new();
        with_capture(&sink, || {
            reg.counter("capture.test.zero").add(0);
            reg.histogram("capture.test.zero_hist").merge(&LocalHistogram::new());
        });
        let delta = sink.snapshot();
        assert_eq!(delta.counter("capture.test.zero"), Some(0));
        assert_eq!(delta.histogram("capture.test.zero_hist"), Some((0, 0)));
    }

    #[test]
    fn replay_matches_direct_updates() {
        let reg = crate::global();
        let sink = CaptureSink::new();
        with_capture(&sink, || {
            reg.counter("capture.test.replayed").add(4);
            reg.gauge("capture.test.replayed_max").record_max(11);
            let mut local = LocalHistogram::new();
            local.record(7);
            local.record(70);
            reg.histogram("capture.test.replayed_hist").merge(&local);
        });
        let delta = sink.snapshot();
        replay(&delta);
        // Counter doubled (direct + replay); gauge idempotent max.
        assert_eq!(reg.counter("capture.test.replayed").get(), 8);
        assert_eq!(reg.gauge("capture.test.replayed_max").get(), 11);
        assert_eq!(reg.histogram("capture.test.replayed_hist").count(), 4);
        assert_eq!(reg.histogram("capture.test.replayed_hist").sum(), 154);
    }

    #[test]
    fn nested_installs_restore_the_outer_sink() {
        let reg = crate::global();
        let outer = CaptureSink::new();
        let inner = CaptureSink::new();
        with_capture(&outer, || {
            with_capture(&inner, || reg.counter("capture.test.nested").add(2));
            reg.counter("capture.test.nested").add(3);
        });
        assert_eq!(inner.snapshot().counter("capture.test.nested"), Some(2));
        assert_eq!(outer.snapshot().counter("capture.test.nested"), Some(3));
        assert!(capture_sink().is_none());
    }
}
