//! Machine-readable run reports: registry snapshot + run metadata
//! serialized through the in-tree [`Json`] writer.
//!
//! Schema (`desc-run-report/v1`), top-level keys:
//!
//! - `schema` — the literal `"desc-run-report/v1"`.
//! - `meta` — tool name/version, seed, scale, jobs, shards, experiment list,
//!   dropped-span count, and a wall-clock timestamp (the
//!   non-deterministic fields).
//! - `metrics` — one entry per registered metric, name-sorted; each is
//!   a typed object (`counter` / `gauge` / `histogram`). Histogram
//!   buckets are sparse: only non-empty buckets appear, keyed by
//!   bucket index.
//! - `pool_utilization` — optional executor accounting: per-worker
//!   busy time and per-region queue-wait/run aggregates (present when
//!   the producer supplies a [`PoolUtilization`]).
//! - `cache` — optional cell-cache accounting: hit/miss/store counts
//!   and manifest size (present when the producer supplies a
//!   [`CacheReport`]).
//! - `serve` — optional sweep-service accounting: accepted/rejected/
//!   timed-out/active request counts (present when the producer is a
//!   `desc-serve` process supplying a [`ServeReport`]).
//! - `spans` — drained trace spans in start-time order (wall-clock, so
//!   durations vary run to run; counters never do).
//!
//! The full schema — key-by-key tables, a worked example, and the
//! stability/versioning rules — is specified in `docs/REPORT_SCHEMA.md`
//! at the repository root, and `tests/schema_doc.rs` keeps that
//! document and this module in lockstep.

use crate::json::Json;
use crate::metrics::HISTOGRAM_BUCKETS;
use crate::registry::{MetricValue, Snapshot};
use crate::trace::Span;
use std::time::{SystemTime, UNIX_EPOCH};

/// Metadata identifying the run that produced a report.
#[derive(Debug, Clone, Default)]
pub struct ReportMeta {
    /// Producing binary, e.g. `"repro"`.
    pub tool: String,
    /// Crate version of the producing binary.
    pub version: String,
    /// Base RNG seed of the run.
    pub seed: u64,
    /// Scale label, e.g. `"quick"` or `"full"`.
    pub scale: String,
    /// Worker count used for sweeps.
    pub jobs: usize,
    /// Intra-cell worker count (bank shards per simulation cell).
    pub shards: usize,
    /// Experiments that ran, in execution order.
    pub experiments: Vec<String>,
    /// Trace spans lost to ring overflow during the run (see
    /// [`crate::spans_dropped`]); nonzero means the `spans` array is a
    /// truncated timeline and `DESC_TRACE_RING` should be raised.
    pub spans_dropped: u64,
}

/// One worker thread's share of the executor's work, for the
/// `pool_utilization` stanza. Worker ordinals match the span/trace
/// lanes (see [`crate::current_worker`]).
#[derive(Debug, Clone)]
pub struct WorkerUtilization {
    /// Stable worker ordinal (Chrome-trace lane id).
    pub worker: u32,
    /// Thread name (`main`, `desc-exec-0`, ...).
    pub name: String,
    /// Microseconds this thread spent executing pool tasks.
    pub busy_us: u64,
    /// Tasks this thread executed.
    pub tasks: u64,
}

/// Aggregated queue-wait / run-time accounting for one executor
/// region family (e.g. `cells`, `parts`).
#[derive(Debug, Clone)]
pub struct RegionUtilization {
    /// Region label.
    pub label: String,
    /// Tasks executed under this label.
    pub tasks: u64,
    /// Sum of per-task queue waits (submit → task start), µs.
    pub queue_wait_us_sum: u64,
    /// Largest single queue wait, µs.
    pub queue_wait_us_max: u64,
    /// Sparse log2 buckets of queue waits (index → count), as in
    /// metric histograms.
    pub queue_wait_us_buckets: Vec<(usize, u64)>,
    /// Sum of per-task run times, µs.
    pub run_us_sum: u64,
    /// Largest single task run time, µs.
    pub run_us_max: u64,
    /// Sparse log2 buckets of run times (index → count).
    pub run_us_buckets: Vec<(usize, u64)>,
}

impl RegionUtilization {
    /// Converts a full bucket array into the sparse pairs this struct
    /// stores (only non-empty buckets, ascending index).
    #[must_use]
    pub fn sparse_buckets(buckets: &[u64; HISTOGRAM_BUCKETS]) -> Vec<(usize, u64)> {
        buckets.iter().enumerate().filter(|(_, &n)| n != 0).map(|(i, &n)| (i, n)).collect()
    }
}

/// Executor accounting for the `pool_utilization` stanza: how busy
/// each worker lane was and where each region family's time went.
/// Produced by `desc_exec::utilization()`; all values are wall-clock
/// and therefore non-deterministic.
#[derive(Debug, Clone, Default)]
pub struct PoolUtilization {
    /// Microseconds elapsed on the executor's timebase (first timed
    /// task → snapshot), the denominator of every busy fraction.
    pub elapsed_us: u64,
    /// Per-worker busy time, ordered by worker ordinal.
    pub workers: Vec<WorkerUtilization>,
    /// Per-region aggregates, ordered by label.
    pub regions: Vec<RegionUtilization>,
}

impl PoolUtilization {
    /// Serializes the stanza (see `docs/REPORT_SCHEMA.md`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let workers = Json::Arr(
            self.workers
                .iter()
                .map(|w| {
                    let fraction = if self.elapsed_us == 0 {
                        0.0
                    } else {
                        w.busy_us as f64 / self.elapsed_us as f64
                    };
                    Json::obj()
                        .with("worker", Json::UInt(u64::from(w.worker)))
                        .with("name", Json::Str(w.name.clone()))
                        .with("busy_us", Json::UInt(w.busy_us))
                        .with("tasks", Json::UInt(w.tasks))
                        .with("busy_fraction", Json::Num((fraction * 1e4).round() / 1e4))
                })
                .collect(),
        );
        let mut regions = Json::obj();
        for r in &self.regions {
            regions = regions.with(
                &r.label,
                Json::obj()
                    .with("tasks", Json::UInt(r.tasks))
                    .with("queue_wait_us_sum", Json::UInt(r.queue_wait_us_sum))
                    .with("queue_wait_us_max", Json::UInt(r.queue_wait_us_max))
                    .with("queue_wait_us_buckets", sparse_to_json(&r.queue_wait_us_buckets))
                    .with("run_us_sum", Json::UInt(r.run_us_sum))
                    .with("run_us_max", Json::UInt(r.run_us_max))
                    .with("run_us_buckets", sparse_to_json(&r.run_us_buckets)),
            );
        }
        Json::obj()
            .with("elapsed_us", Json::UInt(self.elapsed_us))
            .with("workers", workers)
            .with("regions", regions)
    }
}

fn sparse_to_json(buckets: &[(usize, u64)]) -> Json {
    let mut obj = Json::obj();
    for (i, n) in buckets {
        obj = obj.with(&i.to_string(), Json::UInt(*n));
    }
    obj
}

/// Cell-cache accounting for the `cache` stanza: where this run's
/// cells came from. Produced by `repro` from the `desc-cache` store's
/// counters (desc-telemetry deliberately does not depend on
/// desc-cache, mirroring how [`PoolUtilization`] is filled by
/// `desc-exec`). All values are deterministic for a given store state,
/// but naturally differ between cold and warm runs — determinism
/// comparisons filter the stanza (and the matching `cache.*` registry
/// counters) like `pool.*`.
#[derive(Debug, Clone, Default)]
pub struct CacheReport {
    /// Cache directory backing the store (omitted from JSON when the
    /// store is memory-only).
    pub dir: Option<String>,
    /// Cell-result schema version the store was opened with.
    pub schema_version: u64,
    /// Cells served from the in-memory hot map.
    pub hits_memory: u64,
    /// Cells served from the on-disk store of record.
    pub hits_disk: u64,
    /// Cells computed because no usable entry existed.
    pub misses: u64,
    /// Cell results written to the store.
    pub stores: u64,
    /// Entries skipped due to a schema-version mismatch (recomputed,
    /// never served).
    pub version_mismatches: u64,
    /// Unreadable/corrupt entries or failed writes (recomputed /
    /// non-fatal).
    pub errors: u64,
    /// Hot-tier entries dropped to keep the in-memory map under its
    /// byte budget (`DESC_CACHE_MEM_BYTES`); the disk store of record
    /// is unaffected.
    pub evictions: u64,
    /// Callers that became the single-flight leader for a cold cell.
    pub inflight_leads: u64,
    /// Callers that found their cell already in flight and waited for
    /// the leader instead of recomputing.
    pub inflight_waits: u64,
    /// Waits resolved with the leader's published entry — each one a
    /// duplicate compute avoided.
    pub inflight_hits: u64,
    /// Waits that ended with the leader abandoning the cell (panic or
    /// cancellation); a waiting follower took over leadership.
    pub inflight_handoffs: u64,
    /// Keys recorded in the on-disk manifest after the run.
    pub manifest_cells: u64,
    /// True when the run was started with `--resume`.
    pub resumed: bool,
}

impl CacheReport {
    /// Serializes the stanza (see `docs/REPORT_SCHEMA.md`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        if let Some(dir) = &self.dir {
            obj = obj.with("dir", Json::Str(dir.clone()));
        }
        obj.with("schema_version", Json::UInt(self.schema_version))
            .with("hits_memory", Json::UInt(self.hits_memory))
            .with("hits_disk", Json::UInt(self.hits_disk))
            .with("misses", Json::UInt(self.misses))
            .with("stores", Json::UInt(self.stores))
            .with("version_mismatches", Json::UInt(self.version_mismatches))
            .with("errors", Json::UInt(self.errors))
            .with("evictions", Json::UInt(self.evictions))
            .with("inflight_leads", Json::UInt(self.inflight_leads))
            .with("inflight_waits", Json::UInt(self.inflight_waits))
            .with("inflight_hits", Json::UInt(self.inflight_hits))
            .with("inflight_handoffs", Json::UInt(self.inflight_handoffs))
            .with("manifest_cells", Json::UInt(self.manifest_cells))
            .with("resumed", Json::Bool(self.resumed))
    }
}

/// Sweep-service accounting for the `serve` stanza: what the
/// `desc-serve` frontend accepted, rejected, and finished. Filled by
/// `desc-serve` from its admission-gate counters (desc-telemetry
/// deliberately does not depend on desc-serve, mirroring how
/// [`PoolUtilization`] and [`CacheReport`] are filled by their
/// producers). Values are process-cumulative and scheduling-dependent,
/// so determinism comparisons filter the stanza (and the matching
/// `serve.*` registry counters) like `pool.*` / `cache.*`.
#[derive(Debug, Clone, Default)]
pub struct ServeReport {
    /// Address the service is listening on, e.g. `"127.0.0.1:7013"`.
    pub addr: String,
    /// Maximum `run` requests executing concurrently (admission cap).
    pub workers: u64,
    /// Maximum `run` requests allowed to wait for a free worker.
    pub queue_capacity: u64,
    /// Connections accepted over the process lifetime.
    pub connections: u64,
    /// `run` requests admitted past the gate.
    pub accepted: u64,
    /// `run` requests that finished with an `ok` response.
    pub completed: u64,
    /// `run` requests rejected with `busy` (gate full).
    pub rejected_busy: u64,
    /// Frames or payloads rejected as malformed/oversized/invalid.
    pub rejected_malformed: u64,
    /// Requests that hit their deadline (queued or mid-run).
    pub timed_out: u64,
    /// Requests that failed with an `internal` error.
    pub failed: u64,
    /// Cells served to a request from a cell already being computed by
    /// a concurrent request (single-flight dedup; each one a duplicate
    /// compute avoided process-wide).
    pub dedup_cells: u64,
    /// `run` requests that received at least one deduped cell.
    pub dedup_requests: u64,
    /// `run` requests executing right now.
    pub active: u64,
    /// True once graceful shutdown has begun (drain in progress).
    pub draining: bool,
}

impl ServeReport {
    /// Serializes the stanza (see `docs/REPORT_SCHEMA.md` and
    /// `docs/SERVICE.md`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("addr", Json::Str(self.addr.clone()))
            .with("workers", Json::UInt(self.workers))
            .with("queue_capacity", Json::UInt(self.queue_capacity))
            .with("connections", Json::UInt(self.connections))
            .with("accepted", Json::UInt(self.accepted))
            .with("completed", Json::UInt(self.completed))
            .with("rejected_busy", Json::UInt(self.rejected_busy))
            .with("rejected_malformed", Json::UInt(self.rejected_malformed))
            .with("timed_out", Json::UInt(self.timed_out))
            .with("failed", Json::UInt(self.failed))
            .with("dedup_cells", Json::UInt(self.dedup_cells))
            .with("dedup_requests", Json::UInt(self.dedup_requests))
            .with("active", Json::UInt(self.active))
            .with("draining", Json::Bool(self.draining))
    }
}

/// A run report ready to serialize.
#[derive(Debug, Clone)]
pub struct Report {
    /// Run metadata.
    pub meta: ReportMeta,
    /// Registry snapshot taken at the end of the run.
    pub snapshot: Snapshot,
    /// Executor utilization accounting, when the producer collected
    /// it (serialized as `pool_utilization`; omitted when `None`).
    pub pool: Option<PoolUtilization>,
    /// Cell-cache accounting, when the producer ran with a cache
    /// (serialized as `cache`; omitted when `None`).
    pub cache: Option<CacheReport>,
    /// Sweep-service accounting, when the producer is a `desc-serve`
    /// process (serialized as `serve`; omitted when `None`).
    pub serve: Option<ServeReport>,
    /// Trace spans drained at the end of the run.
    pub spans: Vec<Span>,
}

impl Report {
    /// Serializes the report to the v1 JSON schema.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let timestamp = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let meta = Json::obj()
            .with("tool", Json::Str(self.meta.tool.clone()))
            .with("version", Json::Str(self.meta.version.clone()))
            .with("seed", Json::UInt(self.meta.seed))
            .with("scale", Json::Str(self.meta.scale.clone()))
            .with("jobs", Json::UInt(self.meta.jobs as u64))
            .with("shards", Json::UInt(self.meta.shards as u64))
            .with(
                "experiments",
                Json::Arr(self.meta.experiments.iter().map(|e| Json::Str(e.clone())).collect()),
            )
            .with("spans_dropped", Json::UInt(self.meta.spans_dropped))
            .with("generated_unix_s", Json::UInt(timestamp));

        let mut metrics = Json::obj();
        for (name, value) in &self.snapshot.metrics {
            metrics = metrics.with(name, metric_to_json(value));
        }

        let spans = Json::Arr(
            self.spans
                .iter()
                .map(|s| {
                    let mut span = Json::obj()
                        .with("name", Json::Str(s.name.to_owned()))
                        .with("label", Json::Str(s.label.clone()));
                    if !s.ctx.is_empty() {
                        span = span.with("ctx", Json::Str(s.ctx.clone()));
                    }
                    span.with("worker", Json::UInt(u64::from(s.worker)))
                        .with("start_us", Json::UInt(s.start_us))
                        .with("duration_us", Json::UInt(s.duration_us))
                })
                .collect(),
        );

        let mut doc = Json::obj()
            .with("schema", Json::Str("desc-run-report/v1".to_owned()))
            .with("meta", meta)
            .with("metrics", metrics);
        if let Some(pool) = &self.pool {
            doc = doc.with("pool_utilization", pool.to_json());
        }
        if let Some(cache) = &self.cache {
            doc = doc.with("cache", cache.to_json());
        }
        if let Some(serve) = &self.serve {
            doc = doc.with("serve", serve.to_json());
        }
        doc.with("spans", spans)
    }

    /// Serializes and writes the report to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().to_pretty())
    }
}

fn metric_to_json(value: &MetricValue) -> Json {
    match value {
        MetricValue::Counter(v) => Json::obj()
            .with("type", Json::Str("counter".to_owned()))
            .with("value", Json::UInt(*v)),
        MetricValue::Gauge(v) => Json::obj()
            .with("type", Json::Str("gauge".to_owned()))
            .with("value", Json::UInt(*v)),
        MetricValue::Histogram { count, sum, buckets } => {
            let mut sparse = Json::obj();
            for (i, &n) in buckets.iter().enumerate() {
                if n != 0 {
                    sparse = sparse.with(&i.to_string(), Json::UInt(n));
                }
            }
            Json::obj()
                .with("type", Json::Str("histogram".to_owned()))
                .with("count", Json::UInt(*count))
                .with("sum", Json::UInt(*sum))
                .with(
                    "mean",
                    if *count == 0 {
                        Json::Num(0.0)
                    } else {
                        Json::Num(*sum as f64 / *count as f64)
                    },
                )
                .with("buckets", sparse)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn report_has_required_keys_and_round_trips() {
        let r = Registry::new();
        r.counter("a.count").add(5);
        r.histogram("a.lat").record(100);
        let report = Report {
            meta: ReportMeta {
                tool: "test".to_owned(),
                version: "0.0.0".to_owned(),
                seed: 2013,
                scale: "quick".to_owned(),
                jobs: 4,
                shards: 2,
                experiments: vec!["fig16".to_owned()],
                spans_dropped: 0,
            },
            snapshot: r.snapshot(),
            pool: Some(PoolUtilization {
                elapsed_us: 100,
                workers: vec![WorkerUtilization {
                    worker: 0,
                    name: "main".to_owned(),
                    busy_us: 50,
                    tasks: 3,
                }],
                regions: vec![RegionUtilization {
                    label: "cells".to_owned(),
                    tasks: 3,
                    queue_wait_us_sum: 9,
                    queue_wait_us_max: 6,
                    queue_wait_us_buckets: vec![(2, 3)],
                    run_us_sum: 41,
                    run_us_max: 20,
                    run_us_buckets: vec![(4, 2), (5, 1)],
                }],
            }),
            cache: Some(CacheReport {
                dir: Some("/tmp/cache".to_owned()),
                schema_version: 1,
                hits_memory: 2,
                hits_disk: 3,
                misses: 4,
                stores: 4,
                version_mismatches: 0,
                errors: 0,
                evictions: 1,
                inflight_leads: 4,
                inflight_waits: 2,
                inflight_hits: 2,
                inflight_handoffs: 0,
                manifest_cells: 7,
                resumed: true,
            }),
            serve: Some(ServeReport {
                addr: "127.0.0.1:7013".to_owned(),
                workers: 2,
                queue_capacity: 8,
                connections: 5,
                accepted: 4,
                completed: 4,
                rejected_busy: 1,
                rejected_malformed: 0,
                timed_out: 0,
                failed: 0,
                dedup_cells: 2,
                dedup_requests: 1,
                active: 0,
                draining: false,
            }),
            spans: vec![Span {
                name: "cell",
                label: "x".to_owned(),
                ctx: "fig16".to_owned(),
                worker: 0,
                start_us: 1,
                duration_us: 2,
            }],
        };
        let json = report.to_json();
        for key in ["schema", "meta", "metrics", "pool_utilization", "cache", "serve", "spans"] {
            assert!(json.get(key).is_some(), "missing top-level key {key}");
        }
        assert_eq!(json.get("schema").and_then(Json::as_str), Some("desc-run-report/v1"));
        let text = json.to_pretty();
        let back = Json::parse(&text).expect("report parses back");
        let metric = back.get("metrics").and_then(|m| m.get("a.count")).expect("metric present");
        assert_eq!(metric.get("value").and_then(Json::as_u64), Some(5));
        let busy = back
            .get("pool_utilization")
            .and_then(|p| p.get("workers"))
            .and_then(Json::as_arr)
            .and_then(|w| w.first())
            .and_then(|w| w.get("busy_fraction"))
            .and_then(Json::as_f64)
            .expect("busy fraction");
        assert!((busy - 0.5).abs() < 1e-9);
        assert_eq!(back.get("meta").and_then(|m| m.get("spans_dropped")).and_then(Json::as_u64), Some(0));
        let cache = back.get("cache").expect("cache stanza present");
        assert_eq!(cache.get("hits_disk").and_then(Json::as_u64), Some(3));
        assert_eq!(cache.get("manifest_cells").and_then(Json::as_u64), Some(7));
        assert_eq!(cache.get("resumed"), Some(&Json::Bool(true)));
        let serve = back.get("serve").expect("serve stanza present");
        assert_eq!(serve.get("accepted").and_then(Json::as_u64), Some(4));
        assert_eq!(serve.get("rejected_busy").and_then(Json::as_u64), Some(1));
        assert_eq!(serve.get("draining"), Some(&Json::Bool(false)));
    }

    #[test]
    fn optional_stanzas_are_omitted_when_absent() {
        let report = Report {
            meta: ReportMeta::default(),
            snapshot: Registry::new().snapshot(),
            pool: None,
            cache: None,
            serve: None,
            spans: Vec::new(),
        };
        assert!(report.to_json().get("pool_utilization").is_none());
        assert!(report.to_json().get("cache").is_none());
        assert!(report.to_json().get("serve").is_none());
        // A memory-only cache stanza omits `dir`.
        assert!(CacheReport::default().to_json().get("dir").is_none());
    }
}
