//! Machine-readable run reports: registry snapshot + run metadata
//! serialized through the in-tree [`Json`] writer.
//!
//! Schema (`desc-run-report/v1`), top-level keys:
//!
//! - `schema` — the literal `"desc-run-report/v1"`.
//! - `meta` — tool name/version, seed, scale, jobs, shards, experiment list,
//!   and a wall-clock timestamp (the one intentionally
//!   non-deterministic field).
//! - `metrics` — one entry per registered metric, name-sorted; each is
//!   a typed object (`counter` / `gauge` / `histogram`). Histogram
//!   buckets are sparse: only non-empty buckets appear, keyed by
//!   bucket index.
//! - `spans` — drained trace spans in start-time order (wall-clock, so
//!   durations vary run to run; counters never do).
//!
//! The full schema — key-by-key tables, a worked example, and the
//! stability/versioning rules — is specified in `docs/REPORT_SCHEMA.md`
//! at the repository root, and `tests/schema_doc.rs` keeps that
//! document and this module in lockstep.

use crate::json::Json;
use crate::registry::{MetricValue, Snapshot};
use crate::trace::Span;
use std::time::{SystemTime, UNIX_EPOCH};

/// Metadata identifying the run that produced a report.
#[derive(Debug, Clone, Default)]
pub struct ReportMeta {
    /// Producing binary, e.g. `"repro"`.
    pub tool: String,
    /// Crate version of the producing binary.
    pub version: String,
    /// Base RNG seed of the run.
    pub seed: u64,
    /// Scale label, e.g. `"quick"` or `"full"`.
    pub scale: String,
    /// Worker count used for sweeps.
    pub jobs: usize,
    /// Intra-cell worker count (bank shards per simulation cell).
    pub shards: usize,
    /// Experiments that ran, in execution order.
    pub experiments: Vec<String>,
}

/// A run report ready to serialize.
#[derive(Debug, Clone)]
pub struct Report {
    /// Run metadata.
    pub meta: ReportMeta,
    /// Registry snapshot taken at the end of the run.
    pub snapshot: Snapshot,
    /// Trace spans drained at the end of the run.
    pub spans: Vec<Span>,
}

impl Report {
    /// Serializes the report to the v1 JSON schema.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let timestamp = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let meta = Json::obj()
            .with("tool", Json::Str(self.meta.tool.clone()))
            .with("version", Json::Str(self.meta.version.clone()))
            .with("seed", Json::UInt(self.meta.seed))
            .with("scale", Json::Str(self.meta.scale.clone()))
            .with("jobs", Json::UInt(self.meta.jobs as u64))
            .with("shards", Json::UInt(self.meta.shards as u64))
            .with(
                "experiments",
                Json::Arr(self.meta.experiments.iter().map(|e| Json::Str(e.clone())).collect()),
            )
            .with("generated_unix_s", Json::UInt(timestamp));

        let mut metrics = Json::obj();
        for (name, value) in &self.snapshot.metrics {
            metrics = metrics.with(name, metric_to_json(value));
        }

        let spans = Json::Arr(
            self.spans
                .iter()
                .map(|s| {
                    Json::obj()
                        .with("name", Json::Str(s.name.to_owned()))
                        .with("label", Json::Str(s.label.clone()))
                        .with("start_us", Json::UInt(s.start_us))
                        .with("duration_us", Json::UInt(s.duration_us))
                })
                .collect(),
        );

        Json::obj()
            .with("schema", Json::Str("desc-run-report/v1".to_owned()))
            .with("meta", meta)
            .with("metrics", metrics)
            .with("spans", spans)
    }

    /// Serializes and writes the report to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().to_pretty())
    }
}

fn metric_to_json(value: &MetricValue) -> Json {
    match value {
        MetricValue::Counter(v) => Json::obj()
            .with("type", Json::Str("counter".to_owned()))
            .with("value", Json::UInt(*v)),
        MetricValue::Gauge(v) => Json::obj()
            .with("type", Json::Str("gauge".to_owned()))
            .with("value", Json::UInt(*v)),
        MetricValue::Histogram { count, sum, buckets } => {
            let mut sparse = Json::obj();
            for (i, &n) in buckets.iter().enumerate() {
                if n != 0 {
                    sparse = sparse.with(&i.to_string(), Json::UInt(n));
                }
            }
            Json::obj()
                .with("type", Json::Str("histogram".to_owned()))
                .with("count", Json::UInt(*count))
                .with("sum", Json::UInt(*sum))
                .with(
                    "mean",
                    if *count == 0 {
                        Json::Num(0.0)
                    } else {
                        Json::Num(*sum as f64 / *count as f64)
                    },
                )
                .with("buckets", sparse)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn report_has_required_keys_and_round_trips() {
        let r = Registry::new();
        r.counter("a.count").add(5);
        r.histogram("a.lat").record(100);
        let report = Report {
            meta: ReportMeta {
                tool: "test".to_owned(),
                version: "0.0.0".to_owned(),
                seed: 2013,
                scale: "quick".to_owned(),
                jobs: 4,
                shards: 2,
                experiments: vec!["fig16".to_owned()],
            },
            snapshot: r.snapshot(),
            spans: vec![Span { name: "cell", label: "x".to_owned(), start_us: 1, duration_us: 2 }],
        };
        let json = report.to_json();
        for key in ["schema", "meta", "metrics", "spans"] {
            assert!(json.get(key).is_some(), "missing top-level key {key}");
        }
        assert_eq!(json.get("schema").and_then(Json::as_str), Some("desc-run-report/v1"));
        let text = json.to_pretty();
        let back = Json::parse(&text).expect("report parses back");
        let metric = back.get("metrics").and_then(|m| m.get("a.count")).expect("metric present");
        assert_eq!(metric.get("value").and_then(Json::as_u64), Some(5));
    }
}
