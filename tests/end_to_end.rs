//! Workspace-level integration tests: the full pipeline from workload
//! generation through encoding, simulation, energy pricing and the
//! processor roll-up, asserting the paper's headline claims hold
//! end-to-end at reduced scale.

use desc::core::schemes::SchemeKind;
use desc::experiments::figures::fig16;
use desc::experiments::{run_experiment, Scale};
use desc::mcpat::ProcessorConfig;
use desc::cacti::CacheModel;
use desc::sim::{SimConfig, SystemSim};
use desc::workloads::BenchmarkId;

fn scale() -> Scale {
    Scale { accesses: 2_000, apps: 3, seed: 99, jobs: 1, shards: 1 }
}

#[test]
fn headline_l2_energy_reduction_holds_end_to_end() {
    // Paper §5.2: zero-skipped DESC reduces L2 energy substantially
    // (1.81× at full scale); at reduced scale we require ≥1.3×.
    let geos: std::collections::HashMap<_, _> =
        fig16::scheme_geomeans(&scale()).into_iter().collect();
    let zs = geos[&SchemeKind::ZeroSkippedDesc];
    assert!(zs < 0.77, "zero-skip DESC normalised L2 energy {zs}");
    // And it beats every baseline.
    for kind in SchemeKind::ALL {
        if kind != SchemeKind::ZeroSkippedDesc {
            assert!(zs <= geos[&kind] + 1e-9, "{kind} beat zero-skip DESC");
        }
    }
}

#[test]
fn processor_level_savings_track_l2_share() {
    // Fig. 1 ∧ Fig. 19 arithmetic: L2 ≈ 15% of processor energy, so a
    // big L2 saving becomes a mid-single-digit processor saving.
    let s = scale();
    let p = BenchmarkId::Ocean.profile();
    let run = |kind: SchemeKind| {
        let mut cfg = SimConfig::paper_multithreaded();
        cfg.l2.bus_width_bits = kind.build_paper_config().wires().total();
        let result = SystemSim::new(cfg, p, s.seed).run(kind.build_paper_config(), s.accesses);
        let l2 = CacheModel::new(cfg.l2).energy_for(&result.activity);
        ProcessorConfig::niagara_like().roll_up(
            result.instructions,
            result.exec_time_s,
            l2,
            result.misses + result.writebacks,
        )
    };
    let base = run(SchemeKind::ConventionalBinary);
    let desc = run(SchemeKind::ZeroSkippedDesc);
    let fraction = base.l2_fraction();
    assert!((0.08..=0.30).contains(&fraction), "L2 share {fraction}");
    let saving = 1.0 - desc.processor_total_j() / base.processor_total_j();
    assert!((0.01..=0.15).contains(&saving), "processor saving {saving}");
}

#[test]
fn experiment_tables_are_deterministic() {
    let a = run_experiment("fig13", &scale()).render();
    let b = run_experiment("fig13", &scale()).render();
    assert_eq!(a, b);
}

#[test]
fn quick_and_full_scales_agree_on_the_winner() {
    let tiny = fig16::scheme_geomeans(&Scale::tiny());
    let winner = tiny
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("non-empty")
        .0;
    assert!(
        winner == SchemeKind::ZeroSkippedDesc || winner == SchemeKind::LastValueSkippedDesc,
        "unexpected winner {winner:?}"
    );
}
