//! Cross-crate integration: the cycle-stepped DESC protocol carrying
//! ECC-protected payloads, and fault injection across the whole stack.

use desc::core::protocol::{Link, LinkConfig, TraceCapture};
use desc::core::schemes::SkipMode;
use desc::core::ChunkSize;
use desc::ecc::inject::FaultInjector;
use desc::ecc::InterleavedBlock;
use desc::workloads::BenchmarkId;

/// ECC-encode a block, push the chunk payload through the real DESC
/// link as a (reassembled) bit stream, decode, then ECC-check.
#[test]
fn ecc_payloads_survive_the_desc_link() {
    let mut values = BenchmarkId::Fft.profile().value_stream(5);
    let cfg = LinkConfig {
        wires: 137,
        chunk_size: ChunkSize::new(4).expect("valid"),
        mode: SkipMode::Zero,
        wire_delay: 3,
        trace: TraceCapture::Off,
    };
    let mut link = Link::new(cfg);
    for _ in 0..16 {
        let block = values.next_block();
        let encoded = InterleavedBlock::encode_paper(&block);
        // Chunks → byte payload for the link (the first 136 of 137
        // 4-bit chunks fill 68 bytes; the final chunk is checked via
        // the ECC decode below).
        let payload = encoded.as_chunks().reassemble(68);
        let out = link.transfer(&payload);
        assert_eq!(out.decoded, payload, "link must round-trip ECC payloads");
        // And the ECC layer still decodes the data cleanly.
        let decoded = encoded.decode();
        assert!(decoded.usable());
        assert_eq!(decoded.block, block);
    }
}

/// Chunk-granularity corruption between link and ECC decode is always
/// corrected (single fault) — the paper's §3.2.3 guarantee, here
/// exercised with workload-realistic payloads.
#[test]
fn workload_blocks_recover_from_injected_chunk_faults() {
    let mut values = BenchmarkId::Mcf.profile().value_stream(11);
    let mut injector = FaultInjector::new(77);
    for _ in 0..64 {
        let block = values.next_block();
        let mut encoded = InterleavedBlock::encode_paper(&block);
        let (chunk, mask) = injector.chunk_fault(encoded.chunks().len(), 4);
        encoded.corrupt_chunk(chunk, mask);
        let decoded = encoded.decode();
        assert!(decoded.usable(), "single chunk fault must be corrected");
        assert_eq!(decoded.block, block);
    }
}

/// The protocol handles every benchmark's traffic, all skip modes.
#[test]
fn protocol_roundtrips_benchmark_traffic() {
    for mode in [SkipMode::None, SkipMode::Zero, SkipMode::LastValue] {
        let cfg = LinkConfig {
            wires: 32,
            chunk_size: ChunkSize::new(4).expect("valid"),
            mode,
            wire_delay: 1,
            trace: TraceCapture::Off,
        };
        let mut link = Link::new(cfg);
        let mut values = BenchmarkId::Linear.profile().value_stream(3);
        for _ in 0..32 {
            let block = values.next_block();
            assert_eq!(link.transfer(&block).decoded, block, "{mode:?}");
        }
    }
}
