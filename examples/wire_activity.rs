//! Per-wire activity balance: binary encoding concentrates switching
//! on the "busy" bit positions of the data, while DESC spreads exactly
//! one toggle per unskipped chunk across all wires — better for
//! electromigration and IR-drop margins, not just total energy.
//!
//! ```text
//! cargo run --release -p desc --example wire_activity
//! ```

use desc::core::analysis::ActivitySummary;
use desc::core::schemes::{BinaryScheme, DescScheme, SkipMode};
use desc::core::{ChunkSize, TransferScheme};
use desc::workloads::BenchmarkId;

fn main() {
    let profile = BenchmarkId::RayTrace.profile(); // pointer-heavy
    let blocks = 4_000;

    let mut binary = BinaryScheme::new(64);
    let mut desc = DescScheme::new(128, ChunkSize::new(4).expect("valid"), SkipMode::Zero);
    let mut stream = profile.value_stream(17);
    for _ in 0..blocks {
        let block = stream.next_block();
        binary.transfer(&block);
        desc.transfer(&block);
    }

    println!("Per-wire switching over {blocks} {} blocks:\n", profile.name);
    for (name, counts) in [
        ("64-wire binary", binary.wire_transitions()),
        ("128-wire zero-skip DESC", desc.wire_transitions()),
    ] {
        let s = ActivitySummary::from_counts(&counts);
        println!(
            "{name:>24}: mean {:>8.1}  busiest {:>7}  quietest {:>6}  imbalance {:.2}x  CV {:.2}",
            s.mean(),
            s.max(),
            s.min(),
            s.imbalance(),
            s.variation()
        );
    }
    println!("\nBinary's busiest wire switches far above the mean (hot low-order");
    println!("bits); DESC charges every wire at most one toggle per block.");
}
