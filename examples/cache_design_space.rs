//! Explore the L2 design space with the CACTI-lite model: how bank
//! count, bus width and device class trade energy, delay and area —
//! the exploration behind the paper's Fig. 14.
//!
//! ```text
//! cargo run --example cache_design_space
//! ```

use desc::cacti::{CacheConfig, CacheModel, DeviceType};

fn main() {
    println!("8MB L2 design space at 22nm (per-transition H-tree energy, latency, leakage, area):\n");
    println!(
        "{:>6} {:>6} {:>6} {:>12} {:>10} {:>11} {:>9}",
        "banks", "wires", "device", "pJ/flip", "hit (cyc)", "leakage", "area"
    );
    for device in DeviceType::ALL {
        for banks in [2usize, 8, 32] {
            for wires in [64usize, 128, 256] {
                let model = CacheModel::new(CacheConfig {
                    banks,
                    bus_width_bits: wires,
                    cell_device: device,
                    periphery_device: device,
                    ..CacheConfig::paper_baseline()
                });
                println!(
                    "{:>6} {:>6} {:>6} {:>12.2} {:>10} {:>9.1}mW {:>6.1}mm2",
                    banks,
                    wires,
                    device.label(),
                    model.htree_energy_per_transition() * 1e12,
                    model.hit_latency_cycles(),
                    model.leakage_power() * 1e3,
                    model.area_mm2(),
                );
            }
        }
    }
    println!("\nThe paper's choice — 8 banks, 64-bit bus, LSTP — balances hit");
    println!("latency (Table 1's 19 cycles) against mW-scale leakage; HP devices");
    println!("halve the latency but leak three orders of magnitude more.");
}
