//! Quickstart: encode one cache block with every transfer scheme and
//! watch DESC decouple wire activity from data content.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use desc::core::protocol::{Link, LinkConfig, TraceCapture};
use desc::core::schemes::{SchemeKind, SkipMode};
use desc::core::{Block, ChunkSize, TransferScheme};

fn main() {
    // A realistic L2 block: sparse integers (mostly zero bytes).
    let mut bytes = [0u8; 64];
    bytes[0] = 0xDE;
    bytes[1] = 0x07;
    bytes[24] = 0x51;
    bytes[40] = 0x03;
    let sparse = Block::from_bytes(&bytes);
    // And a dense one: random-looking floating-point data.
    let dense_bytes: Vec<u8> = (0..64u32).map(|i| (i.wrapping_mul(97) ^ 0x5A) as u8).collect();
    let dense = Block::from_bytes(&dense_bytes);

    println!("Transfer cost of a sparse block, then a dense block:\n");
    println!(
        "{:<32} {:>8} {:>8} {:>8} {:>8}",
        "scheme", "flips#1", "cyc#1", "flips#2", "cyc#2"
    );
    for kind in SchemeKind::ALL {
        let mut scheme = kind.build_paper_config();
        let a = scheme.transfer(&sparse);
        let b = scheme.transfer(&dense);
        println!(
            "{:<32} {:>8} {:>8} {:>8} {:>8}",
            kind.label(),
            a.total_transitions(),
            a.cycles,
            b.total_transitions(),
            b.cycles
        );
    }

    // The protocol layer really round-trips: decode from toggles only.
    let cfg = LinkConfig {
        wires: 16,
        chunk_size: ChunkSize::new(4).expect("valid chunk size"),
        mode: SkipMode::Zero,
        wire_delay: 2,
        trace: TraceCapture::Off,
    };
    let mut link = Link::new(cfg);
    let out = link.transfer(&sparse);
    assert_eq!(out.decoded, sparse);
    println!("\nCycle-stepped DESC link decoded the sparse block correctly");
    println!(
        "({} transitions in {} cycles across 16 data wires).",
        out.cost.total_transitions(),
        out.cost.cycles
    );
}
