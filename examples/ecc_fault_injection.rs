//! Demonstrates the paper's §3.2.3 claim: DESC transfer errors corrupt
//! whole chunks, yet the interleaved SECDED layout still corrects every
//! single-chunk fault and detects double faults.
//!
//! ```text
//! cargo run --example ecc_fault_injection
//! ```

use desc::core::Block;
use desc::ecc::inject::FaultInjector;
use desc::ecc::InterleavedBlock;

fn main() {
    let payload: Vec<u8> = (0..64).map(|i| (i * 31 + 7) as u8).collect();
    let block = Block::from_bytes(&payload);
    let clean = InterleavedBlock::encode_paper(&block);
    println!("encoded: {clean}\n");

    let mut injector = FaultInjector::new(0xDE5C);
    let trials = 2_000;

    // Single chunk faults: one DESC toggle goes wrong → up to 4 bits.
    let mut corrected = 0;
    for _ in 0..trials {
        let (chunk, mask) = injector.chunk_fault(clean.chunks().len(), 4);
        let mut bad = clean.clone();
        bad.corrupt_chunk(chunk, mask);
        let decoded = bad.decode();
        assert!(decoded.usable() && decoded.block == block, "single fault must correct");
        corrected += 1;
    }
    println!("single-chunk faults injected: {trials}, corrected: {corrected} (100%)");

    // Double chunk faults: corrected when segments are disjoint,
    // otherwise *detected* — never silently wrong.
    let mut ok = 0;
    let mut detected = 0;
    for _ in 0..trials {
        let ((i, m1), (j, m2)) = injector.double_chunk_fault(clean.chunks().len(), 4);
        let mut bad = clean.clone();
        bad.corrupt_chunk(i, m1);
        bad.corrupt_chunk(j, m2);
        let decoded = bad.decode();
        if decoded.usable() {
            assert_eq!(decoded.block, block, "usable decode must be correct");
            ok += 1;
        } else {
            detected += 1;
        }
    }
    println!(
        "double-chunk faults injected: {trials}, corrected: {ok}, detected: {detected}, silent corruptions: 0"
    );
}
