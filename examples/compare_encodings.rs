//! Compare all transfer schemes on a realistic benchmark value stream
//! (the paper's Fig. 16 in miniature), printing mean transitions and
//! latency per block.
//!
//! ```text
//! cargo run --release --example compare_encodings [-- <benchmark>]
//! ```

use desc::core::schemes::SchemeKind;
use desc::core::{CostSummary, TransferScheme};
use desc::workloads::{parallel_suite, BenchmarkId};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "Radix".to_owned());
    let profile = parallel_suite()
        .into_iter()
        .find(|p| p.name.eq_ignore_ascii_case(&name))
        .unwrap_or_else(|| BenchmarkId::Radix.profile());
    let blocks = 5_000;
    println!(
        "Transferring {blocks} cache blocks of {} traffic:\n",
        profile.name
    );
    println!(
        "{:<32} {:>14} {:>12} {:>12}",
        "scheme", "flips/block", "cycles/block", "vs binary"
    );
    let mut binary_mean = None;
    for kind in SchemeKind::ALL {
        let mut scheme = kind.build_paper_config();
        let mut stream = profile.value_stream(42);
        let mut summary = CostSummary::new();
        for _ in 0..blocks {
            summary.record(scheme.transfer(&stream.next_block()));
        }
        let mean = summary.mean_transitions();
        let base = *binary_mean.get_or_insert(mean);
        println!(
            "{:<32} {:>14.1} {:>12.1} {:>11.2}x",
            kind.label(),
            mean,
            summary.mean_cycles(),
            base / mean
        );
    }
    println!("\n(A transition on a wire is what costs energy on the cache H-tree;");
    println!(" the paper's headline 1.81x L2 saving comes from the bottom rows.)");
}
