//! Build a custom workload model and measure how much DESC saves on
//! it end-to-end (simulator + energy model), versus conventional
//! binary transfer.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use desc::core::schemes::SchemeKind;
use desc::cacti::CacheModel;
use desc::sim::{SimConfig, SystemSim};
use desc::workloads::values::ValueModel;
use desc::workloads::BenchmarkId;

fn main() {
    // Start from a real profile and swap in a custom value mixture: a
    // key-value store with many empty slots and pointer-heavy nodes.
    let mut profile = BenchmarkId::Mcf.profile();
    profile.values = ValueModel {
        null: 0.20,
        sparse_int: 0.15,
        small_int: 0.10,
        dense_fp: 0.05,
        text: 0.10,
        pointer: 0.25,
        near_repeat: 0.15,
    };

    let accesses = 20_000;
    let mut results = Vec::new();
    for kind in [SchemeKind::ConventionalBinary, SchemeKind::ZeroSkippedDesc] {
        let mut cfg = SimConfig::paper_multithreaded();
        cfg.l2.bus_width_bits = kind.build_paper_config().wires().total();
        let sim = SystemSim::new(cfg, profile, 7);
        let result = sim.run(kind.build_paper_config(), accesses);
        let l2 = CacheModel::new(cfg.l2).energy_for(&result.activity);
        println!(
            "{:<24} {:>10.1} flips/block {:>8.1} hit cycles  L2 energy {:.3e} J",
            kind.label(),
            result.transfer.mean_transitions(),
            result.avg_hit_latency_cycles,
            l2.total(),
        );
        results.push(l2.total());
    }
    println!(
        "\nZero-skipped DESC cuts this workload's L2 energy by {:.2}x",
        results[0] / results[1]
    );
}
