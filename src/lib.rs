//! # desc — umbrella crate
//!
//! Re-exports every crate of the DESC reproduction workspace so
//! examples and downstream users need a single dependency, plus the
//! handful of types almost every user touches.
//!
//! DESC (Bojnordi & Ipek, MICRO 2013) transfers cache blocks by
//! encoding each data chunk as the delay between two pulses, making
//! interconnect switching activity independent of data content.
//!
//! ```
//! use desc::{Block, ChunkSize, TransferScheme};
//! use desc::core::schemes::{DescScheme, SkipMode};
//!
//! let mut scheme = DescScheme::new(128, ChunkSize::new(4).unwrap(), SkipMode::Zero);
//! let cost = scheme.transfer(&Block::zeroed(64));
//! assert_eq!(cost.data_transitions, 0); // a null block is all skips
//! ```
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! modelling decisions, and `EXPERIMENTS.md` for paper-vs-measured
//! results. The `repro` binary (`desc-experiments`) regenerates every
//! table and figure of the paper.

#![forbid(unsafe_code)]

pub use desc_cacti as cacti;
pub use desc_core as core;
pub use desc_ecc as ecc;
pub use desc_experiments as experiments;
pub use desc_mcpat as mcpat;
pub use desc_sim as sim;
pub use desc_workloads as workloads;

pub use desc_core::{Block, ChunkSize, CostSummary, TransferCost, TransferScheme};

#[cfg(test)]
mod tests {
    #[test]
    fn top_level_reexports_resolve() {
        let block = crate::Block::zeroed(64);
        assert_eq!(block.byte_len(), 64);
        let size = crate::ChunkSize::new(4).expect("valid");
        assert_eq!(size.value_count(), 16);
    }
}
